#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "serve/request.h"
#include "simnet/arrivals.h"

namespace mmlib::serve {

/// Seeded open-loop serving workload: a Poisson arrival stream over a
/// virtual client population, with a request mix and a Zipf-skewed tenant
/// distribution. Everything is a pure function of (seed, spec), so the
/// workload is identical on every run — the precondition for bit-identical
/// serving reports.
struct WorkloadSpec {
  /// Offered load in requests per virtual second.
  double arrival_rate_per_second = 1000.0;
  /// Virtual time covered; arrivals past the horizon are not generated.
  double horizon_seconds = 10.0;
  /// Distinct virtual clients behind the stream (never materialized).
  uint64_t client_population = 1000000;
  /// Relative per-request deadline; 0 disables deadlines.
  double deadline_seconds = 0.5;
  /// Request-kind mix weights (save, recover, probe, inference); any
  /// non-negative weights, normalized internally.
  std::array<double, kRequestKindCount> kind_weights = {0.02, 0.08, 0.10,
                                                        0.80};
  /// Zipf exponent of the tenant distribution: tenant t gets weight
  /// 1 / (t+1)^skew. 0 = uniform; larger = one hot tenant dominating — the
  /// fairness scenario.
  double tenant_skew = 1.0;
  uint64_t seed = 1;
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(const WorkloadSpec& spec, uint32_t tenant_count);

  /// True when another arrival exists inside the horizon.
  bool HasNext() const { return next_arrival_seconds_ <= spec_.horizon_seconds; }

  /// The next request (arrival times strictly increasing).
  Request Next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  RequestKind PickKind(uint64_t identity) const;
  uint32_t PickTenant(uint64_t identity) const;

  WorkloadSpec spec_;
  simnet::ArrivalProcess arrivals_;
  simnet::ClientPopulation clients_;
  uint64_t sequence_ = 0;
  double next_arrival_seconds_ = 0.0;
  /// Cumulative (unnormalized) kind and tenant weights for hash draws.
  std::array<double, kRequestKindCount> kind_cdf_{};
  std::vector<double> tenant_cdf_;
};

}  // namespace mmlib::serve
