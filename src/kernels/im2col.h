#pragma once

#include <cstdint>

namespace mmlib::kernels {

/// Convolution geometry shared by the plan layer and its kernels. All
/// derived quantities are pure functions of the layer shape, so every
/// buffer size and chunk boundary computed from a ConvGeom is independent
/// of the thread count.
struct ConvGeom {
  int64_t batch = 0;
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t kernel = 0;
  int64_t stride = 1;
  int64_t padding = 0;
  int64_t groups = 1;
  int64_t height = 0;  // input spatial extent
  int64_t width = 0;
  int64_t out_h = 0;
  int64_t out_w = 0;

  int64_t group_in() const { return in_channels / groups; }
  int64_t group_out() const { return out_channels / groups; }
  /// Rows of the im2col matrix: one per (channel, ky, kx) of a group.
  int64_t patch_size() const { return group_in() * kernel * kernel; }
  /// Columns of the im2col matrix: one per output pixel.
  int64_t out_pixels() const { return out_h * out_w; }
  /// True when the im2col matrix IS the input plane (no gather needed).
  bool is_pointwise() const {
    return kernel == 1 && stride == 1 && padding == 0;
  }
};

/// Materializes columns [col_begin, col_begin+ncols) of the im2col matrix
/// of (sample n, group g) directly in GEMM panel-major layout (B side,
/// k dimension = patch_size): panel p holds output pixels
/// [col_begin + p*NR, ... + NR), k-major, zero-filled past ncols and for
/// padded border taps. Pointwise geometry takes a contiguous-copy fast
/// path that never recomputes coordinates.
void Im2ColPanels(const ConvGeom& geom, const float* input, int64_t n,
                  int64_t g, int64_t col_begin, int64_t ncols, float* dst);

/// Same gather transposed, for the weight-gradient GEMM: panel-major over
/// the PATCH dimension (B side, k dimension = pixels): panel p holds patch
/// rows [p*NR, p*NR+NR) as columns, pixel-major —
/// dst[p*(ncols*NR) + pix*NR + j] = col[p*NR + j][col_begin + pix].
void Im2ColPatchPanels(const ConvGeom& geom, const float* input, int64_t n,
                       int64_t g, int64_t col_begin, int64_t ncols,
                       float* dst);

/// Scatters a column-gradient tile back to the input gradient:
/// grad_input(n, g) += col2im(colgrad), where `colgrad` is row-major
/// patch_size x ncols covering output pixels [col_begin, col_begin+ncols).
/// Adds run in pixel-major, then patch-index order — the same fixed order
/// for every tiling, so backward results stay bit-identical at any pool
/// size as long as one (sample, group) is processed by one chunk.
void Col2ImScatter(const ConvGeom& geom, const float* colgrad, int64_t n,
                   int64_t g, int64_t col_begin, int64_t ncols,
                   float* grad_input);

}  // namespace mmlib::kernels
