// fixture-path: src/persist/fixture_persist.cc
#include <cstdio>
#include <fstream>

namespace mmlib::persist {

void TearProne(const std::string& path) {
  std::ofstream out(path);              // finding
  FILE* f = fopen(path.c_str(), "wb");  // finding
  (void)f;
}

void AllowedRaw(const std::string& path) {
  std::ofstream out(path);  // lint:allow(no-direct-persist)
}

void Fine(FileOps* wrapper, const std::string& path,
          const std::string& bytes) {
  wrapper->fopen(path);                // member call, not libc: no finding
  util::AtomicWriteFile(path, bytes);  // the sanctioned path
}

}  // namespace mmlib::persist
