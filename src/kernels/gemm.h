#pragma once

#include <cstdint>

namespace mmlib::kernels {

/// Cache-blocked single-precision GEMM on packed operands.
///
/// This is the compute core of the kernel-plan layer (DESIGN.md "Kernel
/// plan layer"). The design is BLIS-shaped: both operands are repacked
/// into register-tile-friendly panels, and a fully unrolled MR x NR
/// microkernel accumulates C tiles held in registers.
///
/// Determinism contract: every C element accumulates its K products in
/// strictly increasing k order — the microkernel vectorizes ACROSS
/// independent output columns, never across the reduction dimension, so
/// the floating-point association order is a pure function of the operand
/// shapes and the plan's KC block size. It does not depend on the thread
/// count, the chunking, the compiler's vector width, or the ISA, which is
/// what keeps planned kernels bit-identical at any pool size.

/// Microkernel register tile: MR rows x NR columns of C.
inline constexpr int64_t kGemmMR = 4;
inline constexpr int64_t kGemmNR = 8;

/// Default reduction block: a KC x NR B panel slice (kKC * kNR * 4 bytes =
/// 32 KiB) stays L1-resident while every row strip streams past it.
inline constexpr int64_t kGemmKC = 1024;

inline constexpr int64_t CeilDiv(int64_t a, int64_t b) {
  return (a + b - 1) / b;
}

/// Floats needed for a packed A (strip-major) operand: ceil(rows/MR)
/// strips, each nk * MR floats (edge rows zero-filled).
inline constexpr int64_t PackedStripFloats(int64_t rows, int64_t nk) {
  return CeilDiv(rows, kGemmMR) * kGemmMR * nk;
}

/// Floats needed for a packed B (panel-major) operand: ceil(cols/NR)
/// panels, each nk * NR floats (edge columns zero-filled).
inline constexpr int64_t PackedPanelFloats(int64_t nk, int64_t cols) {
  return CeilDiv(cols, kGemmNR) * kGemmNR * nk;
}

/// Packs rows of `src` (row-major rows x cols, leading dimension ld) into
/// strip-major layout: strip s holds rows [s*MR, s*MR+MR), k-major —
/// dst[s*(nk*MR) + k*MR + i] = src[(s*MR+i)*ld + k_begin + k]. Rows past
/// `rows` are zero-filled. The packed k range is [k_begin, k_begin+nk).
void PackStrips(const float* src, int64_t rows, int64_t ld, int64_t k_begin,
                int64_t nk, float* dst);

/// Strip-packs the TRANSPOSE of `src` (row-major rows x cols): the packed
/// operand is src^T with `cols` rows and k dimension `rows` —
/// dst[s*(rows*MR) + k*MR + i] = src[k*ld + s*MR + i].
void PackStripsTransposed(const float* src, int64_t rows, int64_t cols,
                          int64_t ld, float* dst);

/// Packs columns [col_begin, col_begin+ncols) of `src` (row-major
/// rows x cols, leading dimension ld) into panel-major layout: panel p
/// holds columns [p*NR, p*NR+NR) of the packed range, k-major —
/// dst[p*(rows*NR) + k*NR + j] = src[k*ld + col_begin + p*NR + j].
/// Columns past `ncols` are zero-filled.
void PackPanels(const float* src, int64_t rows, int64_t ld, int64_t col_begin,
                int64_t ncols, float* dst);

/// Panel-packs the TRANSPOSE of `src` (row-major rows x cols): the packed
/// operand is src^T with k dimension `cols` and `rows` columns; packs
/// columns [col_begin, col_begin+ncols) of src^T (= rows of src).
void PackPanelsTransposed(const float* src, int64_t rows, int64_t cols,
                          int64_t ld, int64_t col_begin, int64_t ncols,
                          float* dst);

/// C[0:m, 0:n] (+)= A . B on packed operands.
///
///  - `a`: strip-major packed A, m rows, k_total k-dim, from PackStrips*.
///  - `b`: panel-major packed B, k_total k-dim, n columns, from PackPanels*.
///  - `c`: row-major output with leading dimension ldc; the tile written is
///    c[r*ldc + col] for r in [0,m), col in [0,n).
///  - `kc`: reduction block size; the k loop runs in [0,kc), [kc,2kc), ...
///    with the C tile reloaded between blocks, so larger-than-L1 panels
///    still accumulate in fixed k order.
///  - `accumulate`: false overwrites C (adding `bias` per column when
///    non-null, as bias + sum in that order); true adds into C.
///  - `rows_outer`: loop order. false iterates column panels outer / row
///    strips inner (A stays cache-resident — pick when A is the smaller
///    operand); true iterates row strips outer (the B tile stays resident).
void GemmPacked(const float* a, const float* b, int64_t m, int64_t n,
                int64_t k_total, int64_t kc, float* c, int64_t ldc,
                bool accumulate, bool rows_outer, const float* bias);

}  // namespace mmlib::kernels
