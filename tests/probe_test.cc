#include <gtest/gtest.h>

#include <memory>

#include "core/probe.h"
#include "data/dataloader.h"
#include "models/zoo.h"

namespace mmlib::core {
namespace {

class ProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    models::ModelConfig config =
        models::DefaultConfig(models::Architecture::kResNet18);
    config.channel_divisor = 8;
    config.image_size = 28;
    config.num_classes = 10;
    auto model = models::BuildModel(config);
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<nn::Model>(std::move(model).value());

    dataset_ = std::make_unique<data::SyntheticImageDataset>(
        data::PaperDatasetId::kCocoOutdoor512, 4096);
    data::DataLoaderOptions options;
    options.batch_size = 4;
    options.image_size = 28;
    options.num_classes = 10;
    data::DataLoader loader(dataset_.get(), options);
    batch_ = loader.GetBatch(0).value();
  }

  std::unique_ptr<nn::Model> model_;
  std::unique_ptr<data::SyntheticImageDataset> dataset_;
  data::Batch batch_;
};

TEST_F(ProbeTest, RecordsEveryLayerInBothPasses) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(1);
  auto record = ProbeModel(model_.get(), batch_, &ctx).value();
  EXPECT_EQ(record.forward.size(), model_->node_count());
  EXPECT_EQ(record.backward.size(), model_->node_count());
  EXPECT_GT(record.loss, 0.0f);
}

TEST_F(ProbeTest, DeterministicExecutionIsReproducible) {
  // Paper Section 2.4: executing the model twice on the same data and
  // comparing layer-wise must show no divergence in deterministic mode.
  auto comparison =
      CheckReproducibility(model_.get(), batch_, /*deterministic=*/true, 5)
          .value();
  EXPECT_TRUE(comparison.equal) << comparison.mismatches.size()
                                << " mismatching layers";
}

TEST_F(ProbeTest, NonDeterministicExecutionDiverges) {
  auto comparison =
      CheckReproducibility(model_.get(), batch_, /*deterministic=*/false, 5)
          .value();
  EXPECT_FALSE(comparison.equal);
  EXPECT_FALSE(comparison.mismatches.empty());
  // The mismatch report names a concrete layer.
  EXPECT_FALSE(comparison.mismatches[0].layer_name.empty());
}

TEST_F(ProbeTest, RecordSerializationRoundtrip) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(2);
  auto record = ProbeModel(model_.get(), batch_, &ctx).value();
  auto restored = ProbeRecord::Deserialize(record.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  auto comparison = CompareProbeRecords(record, restored.value());
  EXPECT_TRUE(comparison.equal);
}

TEST_F(ProbeTest, CrossMachineComparisonViaSerializedRecords) {
  // Simulate verifying reproducibility across machines: run locally,
  // serialize, "ship" the record, rerun remotely, compare.
  nn::ExecutionContext local = nn::ExecutionContext::Deterministic(3);
  auto local_record = ProbeModel(model_.get(), batch_, &local).value();
  const Bytes shipped = local_record.Serialize();

  nn::ExecutionContext remote = nn::ExecutionContext::Deterministic(3);
  auto remote_record = ProbeModel(model_.get(), batch_, &remote).value();
  auto comparison = CompareProbeRecords(
      ProbeRecord::Deserialize(shipped).value(), remote_record);
  EXPECT_TRUE(comparison.equal);
}

TEST_F(ProbeTest, ComparisonLocatesFirstDivergingLayer) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(4);
  auto record = ProbeModel(model_.get(), batch_, &ctx).value();
  ProbeRecord tampered = record;
  tampered.forward[10].digest.bytes[0] ^= 0x01;
  auto comparison = CompareProbeRecords(record, tampered);
  EXPECT_FALSE(comparison.equal);
  ASSERT_EQ(comparison.mismatches.size(), 1u);
  EXPECT_EQ(comparison.mismatches[0].index, 10u);
  EXPECT_EQ(comparison.mismatches[0].pass, ProbeMismatch::Pass::kForward);
  EXPECT_EQ(comparison.mismatches[0].layer_name,
            record.forward[10].layer_name);
}

TEST_F(ProbeTest, ComparisonDetectsLengthMismatch) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(5);
  auto record = ProbeModel(model_.get(), batch_, &ctx).value();
  ProbeRecord shorter = record;
  shorter.backward.pop_back();
  EXPECT_FALSE(CompareProbeRecords(record, shorter).equal);
}

TEST_F(ProbeTest, DeserializeRejectsCorruption) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(6);
  auto record = ProbeModel(model_.get(), batch_, &ctx).value();
  Bytes data = record.Serialize();
  data.resize(data.size() / 2);
  EXPECT_FALSE(ProbeRecord::Deserialize(data).ok());
}

TEST_F(ProbeTest, ProbeClearsObserverOnFailure) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
  data::Batch bad = batch_;
  bad.labels.pop_back();  // label/batch mismatch -> loss fails
  EXPECT_FALSE(ProbeModel(model_.get(), bad, &ctx).ok());
  // The model must be usable afterwards without a stale observer.
  auto record = ProbeModel(model_.get(), batch_, &ctx);
  EXPECT_TRUE(record.ok());
}

/// Paper Section 2.4: "we used the probing tool to check if popular computer
/// vision models are reproducible" — all zoo architectures must be
/// reproducible in deterministic mode.
class ZooReproducibility
    : public ::testing::TestWithParam<models::Architecture> {};

TEST_P(ZooReproducibility, DeterministicTrainingIsReproducible) {
  models::ModelConfig config = models::DefaultConfig(GetParam());
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  auto model = models::BuildModel(config).value();

  data::SyntheticImageDataset dataset(data::PaperDatasetId::kCocoFood512,
                                      4096);
  data::DataLoaderOptions options;
  options.batch_size = 2;
  options.image_size = 28;
  options.num_classes = 10;
  data::DataLoader loader(&dataset, options);
  data::Batch batch = loader.GetBatch(0).value();

  auto comparison =
      CheckReproducibility(&model, batch, /*deterministic=*/true, 11)
          .value();
  EXPECT_TRUE(comparison.equal);
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ZooReproducibility,
    ::testing::ValuesIn(models::AllArchitectures()),
    [](const ::testing::TestParamInfo<models::Architecture>& info) {
      std::string name(models::ArchitectureName(info.param));
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace mmlib::core
