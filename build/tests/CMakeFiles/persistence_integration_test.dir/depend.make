# Empty dependencies file for persistence_integration_test.
# This may be replaced when dependencies are built.
