/// Reproduces paper Figure 12: baseline time-to-recover broken down into
/// the recovery steps — loading the model data, recovering the model from
/// it, and verifying the recovered parameters — for model U3-1-3 across all
/// architectures. The environment-check time is excluded from the table, as
/// in the paper (it is constant across architectures).
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

int main() {
  PrintHeader(
      "Figure 12", "Baseline TTR breakdown for U3-1-3 per architecture",
      "Expected shape: every step grows with the parameter count; GoogLeNet\n"
      "shows a disproportionate 'recover' time (expensive model\n"
      "initialization routine, paper Section 4.4).");

  TablePrinter table({"model", "#params", "load", "recover", "verify",
                      "total (excl. env check)"});
  for (models::Architecture arch : models::AllArchitectures()) {
    FlowConfig config;
    config.approach = ApproachKind::kBaseline;
    config.model = StorageScaleModel(arch);
    config.training_mode = TrainingMode::kSimulated;
    config.recover_models = true;
    const FlowResult result = RunFlowRemote(config);

    core::RecoverBreakdown breakdown;
    for (const UseCaseRecord& record : result.records) {
      if (record.label == "U3-1-3") {
        breakdown = record.ttr_breakdown;
      }
    }
    auto model = models::BuildModel(config.model).value();
    const double total = breakdown.load_seconds + breakdown.recover_seconds +
                         breakdown.verify_seconds;
    table.AddRow({std::string(models::ArchitectureName(arch)),
                  std::to_string(model.TrainableParamCount()),
                  Millis(breakdown.load_seconds),
                  Millis(breakdown.recover_seconds),
                  Millis(breakdown.verify_seconds), Millis(total)});
  }
  table.Print(std::cout);
  return 0;
}
