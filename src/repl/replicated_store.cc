#include "repl/replicated_store.h"

#include <algorithm>

namespace mmlib::repl {

namespace {

/// Validates quorum sizes against the replica count and resolves majority
/// defaults. Shared by both store factories.
Result<std::pair<size_t, size_t>> ResolveQuorums(size_t replica_count,
                                                 const QuorumConfig& config) {
  if (replica_count == 0) {
    return Status::InvalidArgument("replicated store requires >= 1 replica");
  }
  const size_t w = config.ResolvedWrite(replica_count);
  const size_t r = config.ResolvedRead(replica_count);
  if (w < 1 || w > replica_count || r < 1 || r > replica_count) {
    return Status::InvalidArgument(
        "quorums must lie in [1, replica count]: W=" + std::to_string(w) +
        " R=" + std::to_string(r) + " N=" + std::to_string(replica_count));
  }
  return std::make_pair(w, r);
}

}  // namespace

ReplicatedFileStore::ReplicatedFileStore(
    std::vector<filestore::RemoteFileStore*> replicas,
    simnet::Network* network, size_t write_quorum, size_t read_quorum)
    : replicas_(std::move(replicas)),
      network_(network),
      write_quorum_(write_quorum),
      read_quorum_(read_quorum),
      id_generator_(0x4ef11e),
      counters_(replicas_.size()) {}

Result<std::unique_ptr<ReplicatedFileStore>> ReplicatedFileStore::Create(
    std::vector<filestore::RemoteFileStore*> replicas,
    simnet::Network* network, const QuorumConfig& config) {
  for (const filestore::RemoteFileStore* replica : replicas) {
    if (replica == nullptr) {
      return Status::InvalidArgument("null replica transport");
    }
  }
  MMLIB_ASSIGN_OR_RETURN(auto quorums,
                         ResolveQuorums(replicas.size(), config));
  return std::unique_ptr<ReplicatedFileStore>(new ReplicatedFileStore(
      std::move(replicas), network, quorums.first, quorums.second));
}

size_t ReplicatedFileStore::PreferredReplica(const std::string& id) const {
  return Crc32(reinterpret_cast<const uint8_t*>(id.data()), id.size()) %
         replicas_.size();
}

std::vector<size_t> ReplicatedFileStore::ReadOrder(
    const std::string& id) const {
  const size_t n = replicas_.size();
  std::vector<size_t> order;
  order.reserve(n);
  const size_t start = PreferredReplica(id);
  for (size_t i = 0; i < n; ++i) {
    order.push_back((start + i) % n);
  }
  const auto suspect = suspects_.find(id);
  if (suspect != suspects_.end() && n > 1) {
    auto it = std::find(order.begin(), order.end(), suspect->second);
    if (it != order.end()) {
      order.erase(it);
      order.push_back(suspect->second);
    }
  }
  return order;
}

size_t ReplicatedFileStore::ReachableCount() const {
  size_t reachable = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (network_->IsReplicaReachable(r)) {
      ++reachable;
    }
  }
  return reachable;
}

Result<std::string> ReplicatedFileStore::SaveFile(const Bytes& content) {
  MMLIB_ASSIGN_OR_RETURN(std::string id, AllocateFileId());
  MMLIB_RETURN_IF_ERROR(WriteAllocated(id, content));
  return id;
}

Result<std::string> ReplicatedFileStore::AllocateFileId() {
  // The coordinator mints ids locally — before any replica is contacted —
  // so every replica stores a file under the same id and the sequence is
  // identical whether zero or N-1 replicas are unreachable.
  return id_generator_.Next("file");
}

Status ReplicatedFileStore::WriteAllocated(const std::string& id,
                                           const Bytes& content) {
  return QuorumWrite(id, content);
}

Status ReplicatedFileStore::QuorumWrite(const std::string& id,
                                        const Bytes& content) {
  network_->ApplyDueReplicaEvents();
  if (ReachableCount() < write_quorum_) {
    // Fail fast: with the quorum provably unreachable, per-replica retry
    // ladders cannot succeed — don't burn their full backoff budget.
    return Status::Unavailable(
        "write quorum unreachable: " + std::to_string(ReachableCount()) +
        " of " + std::to_string(replicas_.size()) + " replicas, need " +
        std::to_string(write_quorum_));
  }
  std::vector<size_t> acked;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (!network_->IsReplicaReachable(r)) {
      ++counters_[r].write_skips;
      continue;
    }
    const Status status = replicas_[r]->WriteAllocated(id, content);
    if (status.ok()) {
      acked.push_back(r);
    } else if (simnet::IsRetryable(status)) {
      // Transport gave up on this replica; the quorum decides below and
      // anti-entropy re-copies the miss.
      ++counters_[r].write_skips;
    } else {
      // A structural error (invalid id, IO failure) would repeat on every
      // replica; roll back and surface it.
      for (size_t a : acked) {
        (void)replicas_[a]->Delete(id);
      }
      return status;
    }
  }
  if (acked.size() < write_quorum_) {
    // Below quorum nothing may stay visible — a later read quorum could
    // otherwise observe a write the coordinator reported as failed.
    for (size_t a : acked) {
      (void)replicas_[a]->Delete(id);
    }
    return Status::Unavailable(
        "write quorum not met for " + id + ": " +
        std::to_string(acked.size()) + " acks, need " +
        std::to_string(write_quorum_));
  }
  directory_[id] = Sha256::Hash(content);
  adopted_.erase(id);
  tombstones_.erase(id);
  return Status::OK();
}

Result<Bytes> ReplicatedFileStore::LoadFile(const std::string& id) {
  network_->ApplyDueReplicaEvents();
  if (ReachableCount() < read_quorum_) {
    return Status::Unavailable(
        "read quorum unreachable: " + std::to_string(ReachableCount()) +
        " of " + std::to_string(replicas_.size()) + " replicas, need " +
        std::to_string(read_quorum_));
  }
  const auto expected_it = directory_.find(id);
  const Digest* expected =
      expected_it != directory_.end() ? &expected_it->second : nullptr;
  Status last_error = Status::Unavailable("no replica reachable for " + id);
  size_t not_found = 0;
  size_t attempts = 0;
  std::vector<size_t> stale;  // at-rest damaged/stale copies seen on the way
  const std::vector<size_t> order = ReadOrder(id);
  for (const size_t r : order) {
    ++attempts;
    auto loaded = replicas_[r]->LoadFile(id);
    if (!loaded.ok()) {
      last_error = loaded.status();
      if (last_error.code() == StatusCode::kNotFound) {
        ++not_found;
      }
      ++counters_[r].read_fallbacks;
      continue;
    }
    Bytes bytes = std::move(loaded).value();
    Digest digest = Sha256::Hash(bytes);
    if (expected != nullptr && digest != *expected) {
      // Damaged in flight or damaged at rest? Ask the replica to hash its
      // stored copy: a matching server-side digest means the copy is fine
      // and the wire did it — re-fetch once from the same replica.
      auto server_digest = replicas_[r]->ContentDigest(id);
      if (server_digest.ok() && server_digest.value() == *expected) {
        auto again = replicas_[r]->LoadFile(id);
        if (again.ok() &&
            Sha256::Hash(again.value()) == *expected) {
          bytes = std::move(again).value();
          digest = *expected;
        } else {
          ++counters_[r].read_fallbacks;
          last_error = Status::Unavailable("replica " + std::to_string(r) +
                                           " served damaged bytes");
          continue;
        }
      } else {
        // The stored copy itself diverges: stale pre-crash data or bit-rot.
        // Remember it for read-repair once a good copy is in hand.
        stale.push_back(r);
        ++counters_[r].read_fallbacks;
        last_error = Status::Unavailable("replica " + std::to_string(r) +
                                         " holds divergent bytes");
        continue;
      }
    }
    if (expected == nullptr) {
      // First contact with an id written by an earlier store instance:
      // adopt the digest, provisionally — the caller's end-to-end check
      // (ReportDamaged) revokes it if these bytes turn out damaged.
      directory_[id] = digest;
      adopted_.insert(id);
    }
    // Read-repair the divergent copies found on the way here.
    for (const size_t s : stale) {
      if (replicas_[s]->WriteAllocated(id, bytes).ok()) {
        ++counters_[s].read_repairs;
      }
    }
    // Read quorum: the serving replica counts once, every repaired replica
    // acknowledged the correct bytes, and the rest confirm by digest.
    size_t acks = 1 + stale.size();
    for (size_t i = attempts; i < replicas_.size() && acks < read_quorum_;
         ++i) {
      const size_t peer = order[i];
      auto peer_digest = replicas_[peer]->ContentDigest(id);
      if (peer_digest.ok() && peer_digest.value() == digest) {
        ++acks;
      } else if (peer_digest.ok() || peer_digest.status().code() ==
                                         StatusCode::kNotFound) {
        // Reachable but divergent or missing: repair it now and count its
        // write acknowledgement toward the quorum.
        if (replicas_[peer]->WriteAllocated(id, bytes).ok()) {
          ++counters_[peer].read_repairs;
          ++acks;
        }
      }
    }
    if (acks < read_quorum_) {
      return Status::Unavailable(
          "read quorum not met for " + id + ": " + std::to_string(acks) +
          " acks, need " + std::to_string(read_quorum_));
    }
    last_served_[id] = r;
    suspects_.erase(id);
    return bytes;
  }
  if (not_found == attempts && expected == nullptr) {
    return Status::NotFound("no file " + id + " on any replica");
  }
  return last_error;
}

Result<Bytes> ReplicatedFileStore::HedgeFetch(const std::string& id,
                                              size_t replica,
                                              double* cost_seconds) {
  const double start = network_->TotalTransferSeconds();
  auto loaded = replicas_[replica]->LoadFile(id);
  *cost_seconds = network_->TotalTransferSeconds() - start;
  if (!loaded.ok()) {
    ++counters_[replica].read_fallbacks;
    return loaded.status();
  }
  const auto expected_it = directory_.find(id);
  if (expected_it != directory_.end() &&
      Sha256::Hash(loaded.value()) != expected_it->second) {
    ++counters_[replica].read_fallbacks;
    return Status::Unavailable("replica " + std::to_string(replica) +
                               " served unverifiable bytes");
  }
  return loaded;
}

Result<Bytes> ReplicatedFileStore::LoadFileHedged(
    const std::string& id, double hedge_threshold_seconds) {
  network_->ApplyDueReplicaEvents();
  ++hedged_read_count_;
  const std::vector<size_t> order = ReadOrder(id);

  double primary_cost = 0.0;
  Result<Bytes> primary = HedgeFetch(id, order[0], &primary_cost);
  const bool primary_slow =
      hedge_threshold_seconds > 0.0 && primary_cost > hedge_threshold_seconds;
  if (primary.ok() && !primary_slow) {
    return primary;
  }

  if (order.size() > 1) {
    ++hedge_issued_count_;
    double hedge_cost = 0.0;
    Result<Bytes> hedge = HedgeFetch(id, order[1], &hedge_cost);
    if (hedge.ok() && (!primary.ok() || hedge_cost < primary_cost)) {
      ++hedge_win_count_;
      return hedge;
    }
  }
  if (primary.ok()) {
    return primary;
  }
  // Neither copy verified cheaply; the quorum read path knows how to heal
  // (fallback rotation, in-flight re-fetch, read-repair).
  return LoadFile(id);
}

Status ReplicatedFileStore::Delete(const std::string& id) {
  network_->ApplyDueReplicaEvents();
  if (ReachableCount() < write_quorum_) {
    return Status::Unavailable(
        "write quorum unreachable: " + std::to_string(ReachableCount()) +
        " of " + std::to_string(replicas_.size()) + " replicas, need " +
        std::to_string(write_quorum_));
  }
  size_t acks = 0;
  size_t deleted = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (!network_->IsReplicaReachable(r)) {
      ++counters_[r].write_skips;
      continue;
    }
    const Status status = replicas_[r]->Delete(id);
    if (status.ok()) {
      ++acks;
      ++deleted;
    } else if (status.code() == StatusCode::kNotFound) {
      ++acks;  // already absent — the goal state
    } else if (simnet::IsRetryable(status)) {
      ++counters_[r].write_skips;
    } else {
      return status;
    }
  }
  if (acks < write_quorum_) {
    return Status::Unavailable(
        "delete quorum not met for " + id + ": " + std::to_string(acks) +
        " acks, need " + std::to_string(write_quorum_));
  }
  directory_.erase(id);
  adopted_.erase(id);
  suspects_.erase(id);
  last_served_.erase(id);
  tombstones_.insert(id);
  return deleted > 0 ? Status::OK()
                     : Status::NotFound("no file " + id + " on any replica");
}

Result<size_t> ReplicatedFileStore::FileSize(const std::string& id) {
  network_->ApplyDueReplicaEvents();
  Status last_error = Status::Unavailable("no replica reachable for " + id);
  for (const size_t r : ReadOrder(id)) {
    auto size = replicas_[r]->FileSize(id);
    if (size.ok()) {
      return size;
    }
    last_error = size.status();
  }
  return last_error;
}

Result<std::vector<std::string>> ReplicatedFileStore::ListFileIds() {
  network_->ApplyDueReplicaEvents();
  Status last_error = Status::Unavailable("no replica reachable");
  for (size_t r = 0; r < replicas_.size(); ++r) {
    auto ids = replicas_[r]->ListFileIds();
    if (ids.ok()) {
      return ids;
    }
    last_error = ids.status();
  }
  return last_error;
}

Result<Digest> ReplicatedFileStore::ContentDigest(const std::string& id) {
  // The coordinator already knows the committed digest; serving it locally
  // costs no messages. Unknown ids fall back to asking the replicas.
  const auto it = directory_.find(id);
  if (it != directory_.end()) {
    return it->second;
  }
  network_->ApplyDueReplicaEvents();
  Status last_error = Status::NotFound("no file " + id + " on any replica");
  for (const size_t r : ReadOrder(id)) {
    auto digest = replicas_[r]->ContentDigest(id);
    if (digest.ok()) {
      return digest;
    }
    last_error = digest.status();
  }
  return last_error;
}

void ReplicatedFileStore::ReportDamaged(const std::string& id) {
  // The caller's end-to-end check (per-chunk CRC-32) rejected the bytes the
  // last read served. Steer the next read away from that replica...
  const auto served = last_served_.find(id);
  if (served != last_served_.end()) {
    suspects_[id] = served->second;
  }
  // ...and revoke a digest adopted from those very bytes, so the next read
  // does not "verify" other replicas against a damaged reference.
  if (adopted_.erase(id) > 0) {
    directory_.erase(id);
  }
}

size_t ReplicatedFileStore::TotalStoredBytes() const {
  size_t best = 0;
  for (const filestore::RemoteFileStore* replica : replicas_) {
    best = std::max(best, replica->TotalStoredBytes());
  }
  return best;
}

size_t ReplicatedFileStore::FileCount() const {
  size_t best = 0;
  for (const filestore::RemoteFileStore* replica : replicas_) {
    best = std::max(best, replica->FileCount());
  }
  return best;
}

size_t ReplicatedFileStore::PhysicalStoredBytes() const {
  size_t total = 0;
  for (const filestore::RemoteFileStore* replica : replicas_) {
    total += replica->TotalStoredBytes();
  }
  return total;
}

uint64_t ReplicatedFileStore::TransportRetryCount() const {
  uint64_t total = 0;
  for (const filestore::RemoteFileStore* replica : replicas_) {
    total += replica->retry_count();
  }
  return total;
}

uint64_t ReplicatedFileStore::DeadlineExhaustedCount() const {
  uint64_t total = 0;
  for (const filestore::RemoteFileStore* replica : replicas_) {
    total += replica->deadline_exhausted_count();
  }
  return total;
}

const Digest* ReplicatedFileStore::FindExpectedDigest(
    const std::string& id) const {
  const auto it = directory_.find(id);
  return it != directory_.end() ? &it->second : nullptr;
}

ReplicatedDocumentStore::ReplicatedDocumentStore(
    std::vector<docstore::RemoteDocumentStore*> replicas,
    simnet::Network* network, size_t write_quorum, size_t read_quorum)
    : replicas_(std::move(replicas)),
      network_(network),
      write_quorum_(write_quorum),
      read_quorum_(read_quorum),
      id_generator_(0x4ed0c5),
      counters_(replicas_.size()) {}

Result<std::unique_ptr<ReplicatedDocumentStore>>
ReplicatedDocumentStore::Create(
    std::vector<docstore::RemoteDocumentStore*> replicas,
    simnet::Network* network, const QuorumConfig& config) {
  for (const docstore::RemoteDocumentStore* replica : replicas) {
    if (replica == nullptr) {
      return Status::InvalidArgument("null replica transport");
    }
  }
  MMLIB_ASSIGN_OR_RETURN(auto quorums,
                         ResolveQuorums(replicas.size(), config));
  return std::unique_ptr<ReplicatedDocumentStore>(new ReplicatedDocumentStore(
      std::move(replicas), network, quorums.first, quorums.second));
}

size_t ReplicatedDocumentStore::PreferredReplica(
    const std::string& key) const {
  return Crc32(reinterpret_cast<const uint8_t*>(key.data()), key.size()) %
         replicas_.size();
}

size_t ReplicatedDocumentStore::ReachableCount() const {
  size_t reachable = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (network_->IsReplicaReachable(r)) {
      ++reachable;
    }
  }
  return reachable;
}

Result<std::string> ReplicatedDocumentStore::Insert(
    const std::string& collection, json::Value doc) {
  MMLIB_ASSIGN_OR_RETURN(std::string id, AllocateDocId(collection));
  MMLIB_RETURN_IF_ERROR(InsertWithId(collection, id, std::move(doc)));
  return id;
}

Result<std::string> ReplicatedDocumentStore::AllocateDocId(
    const std::string& collection) {
  // Minted by the coordinator, like file ids — see AllocateFileId.
  return id_generator_.Next(collection);
}

Status ReplicatedDocumentStore::InsertWithId(const std::string& collection,
                                             const std::string& id,
                                             json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  return QuorumInsert(collection, id, doc);
}

Status ReplicatedDocumentStore::QuorumInsert(const std::string& collection,
                                             const std::string& id,
                                             const json::Value& doc) {
  network_->ApplyDueReplicaEvents();
  if (ReachableCount() < write_quorum_) {
    return Status::Unavailable(
        "write quorum unreachable: " + std::to_string(ReachableCount()) +
        " of " + std::to_string(replicas_.size()) + " replicas, need " +
        std::to_string(write_quorum_));
  }
  std::vector<size_t> acked;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (!network_->IsReplicaReachable(r)) {
      ++counters_[r].write_skips;
      continue;
    }
    const Status status = replicas_[r]->InsertWithId(collection, id, doc);
    if (status.ok()) {
      acked.push_back(r);
    } else if (simnet::IsRetryable(status)) {
      ++counters_[r].write_skips;
    } else {
      for (size_t a : acked) {
        (void)replicas_[a]->Delete(collection, id);
      }
      return status;
    }
  }
  if (acked.size() < write_quorum_) {
    for (size_t a : acked) {
      (void)replicas_[a]->Delete(collection, id);
    }
    return Status::Unavailable(
        "write quorum not met for " + KeyFor(collection, id) + ": " +
        std::to_string(acked.size()) + " acks, need " +
        std::to_string(write_quorum_));
  }
  // The stored form carries "_id"; digest what the replicas actually hold.
  json::Value stored = doc;
  stored.Set("_id", id);
  directory_[KeyFor(collection, id)] = Sha256::Hash(stored.Dump());
  tombstones_.erase(KeyFor(collection, id));
  return Status::OK();
}

Result<json::Value> ReplicatedDocumentStore::Get(const std::string& collection,
                                                 const std::string& id) {
  network_->ApplyDueReplicaEvents();
  if (ReachableCount() < read_quorum_) {
    return Status::Unavailable(
        "read quorum unreachable: " + std::to_string(ReachableCount()) +
        " of " + std::to_string(replicas_.size()) + " replicas, need " +
        std::to_string(read_quorum_));
  }
  const std::string key = KeyFor(collection, id);
  const auto expected_it = directory_.find(key);
  const Digest* expected =
      expected_it != directory_.end() ? &expected_it->second : nullptr;
  const size_t n = replicas_.size();
  const size_t start = PreferredReplica(key);
  Status last_error = Status::Unavailable("no replica reachable for " + key);
  size_t not_found = 0;
  std::vector<size_t> stale;
  for (size_t i = 0; i < n; ++i) {
    const size_t r = (start + i) % n;
    auto loaded = replicas_[r]->Get(collection, id);
    if (!loaded.ok()) {
      last_error = loaded.status();
      if (last_error.code() == StatusCode::kNotFound) {
        ++not_found;
      }
      ++counters_[r].read_fallbacks;
      continue;
    }
    json::Value doc = std::move(loaded).value();
    const Digest digest = Sha256::Hash(doc.Dump());
    if (expected != nullptr && digest != *expected) {
      // Remote document responses are rejected when damaged in flight, so
      // a mismatch here is at-rest divergence — no disambiguation needed.
      stale.push_back(r);
      ++counters_[r].read_fallbacks;
      last_error = Status::Unavailable("replica " + std::to_string(r) +
                                       " holds a divergent document");
      continue;
    }
    if (expected == nullptr) {
      directory_[key] = digest;
    }
    for (const size_t s : stale) {
      if (replicas_[s]->InsertWithId(collection, id, doc).ok()) {
        ++counters_[s].read_repairs;
      }
    }
    size_t acks = 1 + stale.size();
    for (size_t j = i + 1; j < n && acks < read_quorum_; ++j) {
      const size_t peer = (start + j) % n;
      auto peer_digest = replicas_[peer]->DocumentDigest(collection, id);
      if (peer_digest.ok() && peer_digest.value() == digest) {
        ++acks;
      } else if (peer_digest.ok() || peer_digest.status().code() ==
                                         StatusCode::kNotFound) {
        if (replicas_[peer]->InsertWithId(collection, id, doc).ok()) {
          ++counters_[peer].read_repairs;
          ++acks;
        }
      }
    }
    if (acks < read_quorum_) {
      return Status::Unavailable(
          "read quorum not met for " + key + ": " + std::to_string(acks) +
          " acks, need " + std::to_string(read_quorum_));
    }
    return doc;
  }
  if (not_found == n && expected == nullptr) {
    return Status::NotFound("no document " + key + " on any replica");
  }
  return last_error;
}

Status ReplicatedDocumentStore::Delete(const std::string& collection,
                                       const std::string& id) {
  network_->ApplyDueReplicaEvents();
  if (ReachableCount() < write_quorum_) {
    return Status::Unavailable(
        "write quorum unreachable: " + std::to_string(ReachableCount()) +
        " of " + std::to_string(replicas_.size()) + " replicas, need " +
        std::to_string(write_quorum_));
  }
  const std::string key = KeyFor(collection, id);
  size_t acks = 0;
  size_t deleted = 0;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    if (!network_->IsReplicaReachable(r)) {
      ++counters_[r].write_skips;
      continue;
    }
    const Status status = replicas_[r]->Delete(collection, id);
    if (status.ok()) {
      ++acks;
      ++deleted;
    } else if (status.code() == StatusCode::kNotFound) {
      ++acks;
    } else if (simnet::IsRetryable(status)) {
      ++counters_[r].write_skips;
    } else {
      return status;
    }
  }
  if (acks < write_quorum_) {
    return Status::Unavailable(
        "delete quorum not met for " + key + ": " + std::to_string(acks) +
        " acks, need " + std::to_string(write_quorum_));
  }
  directory_.erase(key);
  tombstones_.insert(key);
  return deleted > 0
             ? Status::OK()
             : Status::NotFound("no document " + key + " on any replica");
}

Result<std::vector<std::string>> ReplicatedDocumentStore::ListIds(
    const std::string& collection) {
  network_->ApplyDueReplicaEvents();
  const size_t start = PreferredReplica(collection);
  Status last_error = Status::Unavailable("no replica reachable");
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const size_t r = (start + i) % replicas_.size();
    auto ids = replicas_[r]->ListIds(collection);
    if (ids.ok()) {
      return ids;
    }
    last_error = ids.status();
  }
  return last_error;
}

Result<std::vector<std::string>> ReplicatedDocumentStore::ListCollections() {
  network_->ApplyDueReplicaEvents();
  Status last_error = Status::Unavailable("no replica reachable");
  for (size_t r = 0; r < replicas_.size(); ++r) {
    auto names = replicas_[r]->ListCollections();
    if (names.ok()) {
      return names;
    }
    last_error = names.status();
  }
  return last_error;
}

Result<Digest> ReplicatedDocumentStore::DocumentDigest(
    const std::string& collection, const std::string& id) {
  const auto it = directory_.find(KeyFor(collection, id));
  if (it != directory_.end()) {
    return it->second;
  }
  network_->ApplyDueReplicaEvents();
  Status last_error =
      Status::NotFound("no document " + KeyFor(collection, id));
  const size_t start = PreferredReplica(KeyFor(collection, id));
  for (size_t i = 0; i < replicas_.size(); ++i) {
    const size_t r = (start + i) % replicas_.size();
    auto digest = replicas_[r]->DocumentDigest(collection, id);
    if (digest.ok()) {
      return digest;
    }
    last_error = digest.status();
  }
  return last_error;
}

size_t ReplicatedDocumentStore::TotalStoredBytes() const {
  size_t best = 0;
  for (const docstore::RemoteDocumentStore* replica : replicas_) {
    best = std::max(best, replica->TotalStoredBytes());
  }
  return best;
}

size_t ReplicatedDocumentStore::DocumentCount() const {
  size_t best = 0;
  for (const docstore::RemoteDocumentStore* replica : replicas_) {
    best = std::max(best, replica->DocumentCount());
  }
  return best;
}

size_t ReplicatedDocumentStore::PhysicalStoredBytes() const {
  size_t total = 0;
  for (const docstore::RemoteDocumentStore* replica : replicas_) {
    total += replica->TotalStoredBytes();
  }
  return total;
}

uint64_t ReplicatedDocumentStore::TransportRetryCount() const {
  uint64_t total = 0;
  for (const docstore::RemoteDocumentStore* replica : replicas_) {
    total += replica->retry_count();
  }
  return total;
}

uint64_t ReplicatedDocumentStore::DeadlineExhaustedCount() const {
  uint64_t total = 0;
  for (const docstore::RemoteDocumentStore* replica : replicas_) {
    total += replica->deadline_exhausted_count();
  }
  return total;
}

const Digest* ReplicatedDocumentStore::FindExpectedDigest(
    const std::string& key) const {
  const auto it = directory_.find(key);
  return it != directory_.end() ? &it->second : nullptr;
}

}  // namespace mmlib::repl
