#pragma once

#include <cstdint>
#include <string_view>

namespace mmlib::serve {

/// Operations the serving front end accepts (paper use cases U1–U3 plus the
/// inference traffic a deployed model store ultimately exists for).
enum class RequestKind : uint8_t {
  kSave = 0,
  kRecover = 1,
  kProbe = 2,
  kInference = 3,
};

inline constexpr int kRequestKindCount = 4;

inline std::string_view RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kSave:
      return "save";
    case RequestKind::kRecover:
      return "recover";
    case RequestKind::kProbe:
      return "probe";
    case RequestKind::kInference:
      return "inference";
  }
  return "unknown";
}

/// One client request as the front end sees it. Everything about a request
/// — tenant, kind, service-time jitter, replica preference — is a pure
/// function of (workload seed, sequence), so a request carries the same
/// identity on every run regardless of what happens to the requests around
/// it.
struct Request {
  /// Position in the arrival stream; the deterministic identity key.
  uint64_t sequence = 0;
  /// Stable virtual-client id (see simnet::ClientPopulation).
  uint64_t client = 0;
  /// Tenant the client belongs to; admission and scheduling are per-tenant.
  uint32_t tenant = 0;
  RequestKind kind = RequestKind::kInference;
  /// Virtual time the request arrived at its coordinator node.
  double arrival_seconds = 0.0;
  /// Absolute virtual deadline; past it the client has hung up. 0 = none.
  double deadline_seconds = 0.0;
};

/// Terminal outcome of one request, for accounting. Every admitted or shed
/// request ends in exactly one of these.
enum class RequestOutcome : uint8_t {
  /// Served successfully within its deadline.
  kServed = 0,
  /// Rejected at admission (queue full or tenant over quota) —
  /// ResourceExhausted to the client.
  kShed = 1,
  /// Admitted but abandoned: its deadline expired before or during service.
  kDeadlineExpired = 2,
  /// Rejected fast because the target backend's circuit breaker was open.
  kBreakerRejected = 3,
  /// Dispatched but the backend failed it (and retries could not heal it).
  kBackendFailed = 4,
};

inline constexpr int kRequestOutcomeCount = 5;

inline std::string_view RequestOutcomeName(RequestOutcome outcome) {
  switch (outcome) {
    case RequestOutcome::kServed:
      return "served";
    case RequestOutcome::kShed:
      return "shed";
    case RequestOutcome::kDeadlineExpired:
      return "deadline_expired";
    case RequestOutcome::kBreakerRejected:
      return "breaker_rejected";
    case RequestOutcome::kBackendFailed:
      return "backend_failed";
  }
  return "unknown";
}

}  // namespace mmlib::serve
