// fixture-path: src/dist/fixture_remote.cc

namespace mmlib::dist {

void Bad(RemoteStore* store, const Document& doc) {
  auto bytes = store->LoadFile(7).value();  // finding
  auto id = store->Insert(doc).value();     // finding
  (void)bytes;
  (void)id;
}

void Allowed(RemoteStore* store) {
  auto bytes = store->LoadFile(7).value();  // lint:allow(no-unchecked-remote)
  (void)bytes;
}

Status Good(RemoteStore* store) {
  MMLIB_ASSIGN_OR_RETURN(auto bytes, store->LoadFile(7));
  auto pending = store->LoadFile(8);  // no .value(): fine
  (void)bytes;
  (void)pending;
  return OkStatus();
}

}  // namespace mmlib::dist
