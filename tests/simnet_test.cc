#include <gtest/gtest.h>

#include "simnet/network.h"

namespace mmlib::simnet {
namespace {

TEST(LinkTest, TransferSecondsCombineLatencyAndBandwidth) {
  Link link{1e9, 1e-3};  // 1 GB/s, 1 ms latency
  EXPECT_DOUBLE_EQ(link.TransferSeconds(0), 1e-3);
  EXPECT_DOUBLE_EQ(link.TransferSeconds(1'000'000'000), 1.001);
}

TEST(LinkTest, PresetLinksAreOrdered) {
  // The datacenter link is vastly faster than the vehicle uplink.
  const Link fast = Link::InfiniBand100G();
  const Link slow = Link::Cellular50M();
  EXPECT_LT(fast.TransferSeconds(100 << 20), slow.TransferSeconds(100 << 20));
  EXPECT_LT(fast.latency_seconds, slow.latency_seconds);
}

TEST(NetworkTest, AccumulatesTransfers) {
  Network network(Link{1000.0, 0.5});
  const double t1 = network.Transfer(500);
  EXPECT_DOUBLE_EQ(t1, 1.0);  // 0.5 latency + 500/1000
  network.Transfer(1500);
  EXPECT_EQ(network.TotalBytes(), 2000u);
  EXPECT_EQ(network.MessageCount(), 2u);
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), 1.0 + 2.0);
}

TEST(NetworkTest, ResetClearsState) {
  Network network;
  network.Transfer(1 << 20);
  network.Reset();
  EXPECT_EQ(network.TotalBytes(), 0u);
  EXPECT_EQ(network.MessageCount(), 0u);
  EXPECT_DOUBLE_EQ(network.TotalTransferSeconds(), 0.0);
}

TEST(NetworkTest, InfiniBandIsSubMillisecondForModelSizedPayloads) {
  // Sanity for the paper's setup: a 240 MB ResNet-152 snapshot crosses the
  // 100G link in ~20 ms — network time does not dominate save times.
  Network network(Link::InfiniBand100G());
  const double seconds = network.Transfer(240ull << 20);
  EXPECT_LT(seconds, 0.05);
  EXPECT_GT(seconds, 0.01);
}

}  // namespace
}  // namespace mmlib::simnet
