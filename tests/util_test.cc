#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/id_generator.h"
#include "util/random.h"
#include "util/result.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace mmlib {
namespace {

// --- Status ---

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::IoError("disk full").WithContext("saving model");
  EXPECT_EQ(s.ToString(), "IoError: saving model: disk full");
  EXPECT_TRUE(Status::OK().WithContext("anything").ok());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kCorruption,
        StatusCode::kIoError, StatusCode::kFailedPrecondition,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kOutOfRange}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

// --- Result ---

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return Status::InvalidArgument("not positive");
  }
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(42), 42);
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  auto chained = [](int v) -> Result<int> {
    MMLIB_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
    return parsed * 2;
  };
  EXPECT_EQ(chained(5).value(), 10);
  EXPECT_FALSE(chained(-5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 3);
}

// --- Bytes ---

TEST(BytesTest, PrimitiveRoundtrip) {
  BytesWriter writer;
  writer.WriteU8(0xab);
  writer.WriteU32(0xdeadbeef);
  writer.WriteU64(0x0123456789abcdefULL);
  writer.WriteI64(-42);
  writer.WriteF32(3.5f);
  writer.WriteF64(-2.25);
  writer.WriteString("hello");
  writer.WriteBlob(Bytes{1, 2, 3});

  BytesReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadU8().value(), 0xab);
  EXPECT_EQ(reader.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadI64().value(), -42);
  EXPECT_EQ(reader.ReadF32().value(), 3.5f);
  EXPECT_EQ(reader.ReadF64().value(), -2.25);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadBlob().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(reader.AtEnd());
}

TEST(BytesTest, TruncatedReadsFail) {
  BytesWriter writer;
  writer.WriteU32(7);
  BytesReader reader(writer.bytes());
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.ReadU8().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedStringFails) {
  BytesWriter writer;
  writer.WriteU64(100);  // length prefix larger than available bytes
  BytesReader reader(writer.bytes());
  EXPECT_EQ(reader.ReadString().status().code(), StatusCode::kCorruption);
}

TEST(BytesTest, HexRoundtrip) {
  const Bytes data{0x00, 0x0f, 0xf0, 0xff, 0x5a};
  const std::string hex = ToHex(data);
  EXPECT_EQ(hex, "000ff0ff5a");
  EXPECT_EQ(FromHex(hex).value(), data);
}

TEST(BytesTest, HexRejectsBadInput) {
  EXPECT_EQ(FromHex("abc").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FromHex("zz").status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(FromHex("ABCDEF").ok());  // uppercase accepted
}

TEST(BytesTest, StringConversions) {
  EXPECT_EQ(BytesToString(StringToBytes("round trip")), "round trip");
}

// --- Strings ---

TEST(StringsTest, Split) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("classifier.fc", "classifier."));
  EXPECT_FALSE(StartsWith("fc", "classifier."));
  EXPECT_TRUE(EndsWith("model.json", ".json"));
  EXPECT_FALSE(EndsWith("model.bin", ".json"));
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripWhitespace("  hi \n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(14 * 1024 * 1024), "14.0 MB");
}

TEST(StringsTest, Padding) {
  EXPECT_EQ(PadLeft("7", 3), "  7");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(PadLeft("long", 2), "long");
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.NextU64() != b.NextU64()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, FloatInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat();
    EXPECT_GE(f, 0.0f);
    EXPECT_LT(f, 1.0f);
  }
}

TEST(RngTest, NextBelowIsBounded) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  // Bound 1 always yields 0.
  EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, GaussianHasReasonableMoments) {
  Rng rng(11);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kSamples;
  const double variance = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<size_t> indices(100);
  for (size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  rng.Shuffle(&indices);
  std::set<size_t> seen(indices.begin(), indices.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(5);
  Rng b(5);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  EXPECT_EQ(fa.NextU64(), fb.NextU64());
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, ShuffleEmptyIsNoOp) {
  Rng rng(1);
  std::vector<size_t> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
}

// --- Clocks ---

TEST(ClockTest, WallClockAdvances) {
  WallClock* clock = WallClock::Get();
  const uint64_t a = clock->NowNanos();
  const uint64_t b = clock->NowNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, VirtualClockOnlyAdvancesExplicitly) {
  VirtualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0u);
  clock.AdvanceNanos(500);
  EXPECT_EQ(clock.NowNanos(), 500u);
  clock.AdvanceSeconds(1.5);
  EXPECT_EQ(clock.NowNanos(), 500u + 1'500'000'000u);
}

TEST(ClockTest, StopwatchOnVirtualClock) {
  VirtualClock clock;
  Stopwatch watch(&clock);
  clock.AdvanceSeconds(2.0);
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 2.0);
  watch.Reset();
  EXPECT_DOUBLE_EQ(watch.ElapsedSeconds(), 0.0);
}

// --- IdGenerator ---

TEST(IdGeneratorTest, IdsAreUnique) {
  IdGenerator gen(42);
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.insert(gen.Next("model"));
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(IdGeneratorTest, DeterministicForSeed) {
  IdGenerator a(7);
  IdGenerator b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.Next("x"), b.Next("x"));
  }
}

TEST(IdGeneratorTest, PrefixAppears) {
  IdGenerator gen(1);
  EXPECT_TRUE(StartsWith(gen.Next("prefix"), "prefix-"));
}

// --- TablePrinter ---

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name      | value |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace mmlib
