#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "models/zoo.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "nn/pooling.h"
#include "util/random.h"

namespace mmlib::models::internal {

/// Shared state threaded through architecture builders.
struct BuilderCtx {
  nn::Model* model;
  Rng* rng;
  int64_t divisor;

  /// Scales a full-size channel width by the configured divisor.
  int64_t Ch(int64_t full_width) const {
    return std::max<int64_t>(1, full_width / divisor);
  }
};

/// Appends conv -> batchnorm (no activation). Returns the bn node id.
int64_t ConvBn(BuilderCtx* ctx, const std::string& name, int64_t input_node,
               int64_t in_ch, int64_t out_ch, int64_t kernel, int64_t stride,
               int64_t padding, int64_t groups = 1);

/// Appends conv -> batchnorm -> ReLU (clip=6 for ReLU6). Returns the relu
/// node id.
int64_t ConvBnRelu(BuilderCtx* ctx, const std::string& name,
                   int64_t input_node, int64_t in_ch, int64_t out_ch,
                   int64_t kernel, int64_t stride, int64_t padding,
                   int64_t groups = 1, float relu_clip = 0.0f);

/// Architecture builders; channel widths are full-size values scaled by the
/// config divisor inside.
Result<nn::Model> BuildResNet(const ModelConfig& config);
Result<nn::Model> BuildMobileNetV2(const ModelConfig& config);
Result<nn::Model> BuildGoogLeNet(const ModelConfig& config);

}  // namespace mmlib::models::internal

