#include "util/id_generator.h"

#include <cstdio>

#include "util/random.h"

namespace mmlib {

IdGenerator::IdGenerator(uint64_t seed) {
  SplitMix64 sm(seed);
  suffix_state_ = sm.Next();
}

std::string IdGenerator::Next(const std::string& prefix) {
  const uint64_t count = counter_.fetch_add(1, std::memory_order_relaxed);
  SplitMix64 sm(suffix_state_ + count);
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "-%llu-%08llx",
                static_cast<unsigned long long>(count),
                static_cast<unsigned long long>(sm.Next() & 0xffffffffULL));
  return prefix + buffer;
}

}  // namespace mmlib
