#include "nn/linear.h"

#include "kernels/plan_cache.h"
#include "tensor/validate.h"
#include "util/thread_pool.h"
#include <cmath>

namespace mmlib::nn {

namespace {

/// Chunk caps mirroring conv2d.cc: constants (never the thread count) so
/// chunk boundaries — and with them the fixed-order gradient reduction —
/// are identical for every pool size.
constexpr int64_t kMaxForwardChunks = 64;
constexpr int64_t kMaxBackwardChunks = 8;

}  // namespace

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               Rng* rng)
    : Layer(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(in_features));
  AddParam("weight",
           Tensor::Uniform(Shape{out_features, in_features}, -bound, bound,
                           rng));
  AddParam("bias", Tensor::Uniform(Shape{out_features}, -bound, bound, rng));
}

Result<Tensor> Linear::Forward(const std::vector<const Tensor*>& inputs,
                               ExecutionContext* ctx) {
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 2 || x.shape().dim(1) != in_features_) {
    return Status::InvalidArgument("linear " + name_ + ": bad input shape " +
                                   x.shape().ToString());
  }
  cached_input_ = x;
  has_forward_ = true;
  const int64_t batch = x.shape().dim(0);
  Tensor y(Shape{batch, out_features_});
  const float* weight = params_[0].value.data();
  const float* bias = params_[1].value.data();

  // Deterministic executions of non-trivial shapes go through the kernel
  // plan layer; non-deterministic executions keep the direct loop and its
  // scheduler-driven reduction splits.
  if (ctx->deterministic()) {
    if (!plan_ || plan_->batch() != batch) {
      plan_ = kernels::PlanCache::Instance().GetLinearPlan(batch, in_features_,
                                                           out_features_);
    }
    if (plan_->algo() != kernels::LinearAlgo::kDirect) {
      plan_->Forward(x.data(), weight, bias, y.data(), ctx->pool());
      return y;
    }
  }

  // Shard over (sample, output row): every task writes exactly one output
  // element via a complete fixed-order dot product, so results are
  // bit-identical for any chunking and any thread count.
  const int64_t tasks = batch * out_features_;
  const int64_t grain = util::GrainForMaxChunks(tasks, kMaxForwardChunks);
  const bool deterministic = ctx->deterministic();
  const uint64_t epoch = ctx->NextParallelEpoch();
  util::ParallelFor(
      ctx->pool(), tasks, grain,
      [&](int64_t begin, int64_t end, size_t chunk_index) {
        Rng scheduler(ctx->ChunkSchedulerSeed(epoch, chunk_index));
        for (int64_t t = begin; t < end; ++t) {
          const int64_t n = t / out_features_;
          const int64_t o = t % out_features_;
          const float* row = x.data() + n * in_features_;
          y.data()[n * out_features_ + o] =
              bias[o] + AccumulateDotKernel(weight + o * in_features_, row,
                                            in_features_,
                                            /*has_fast_det_kernel=*/true,
                                            deterministic, &scheduler);
        }
      });
  return y;
}

Result<std::vector<Tensor>> Linear::Backward(const Tensor& grad_output,
                                             ExecutionContext* ctx) {
  if (!has_forward_) {
    return Status::InvalidArgument("linear " + name_ +
                                   ": Backward called before Forward");
  }
  const int64_t batch = cached_input_.shape().dim(0);
  MMLIB_RETURN_IF_ERROR(check::ValidateShapesMatch(
      grad_output.shape(), Shape{batch, out_features_},
      "linear " + name_ + " grad_output"));
  const float* weight = params_[0].value.data();
  float* grad_weight = params_[0].grad.data();
  float* grad_bias = params_[1].grad.data();
  const size_t gw_numel = static_cast<size_t>(params_[0].grad.numel());
  const size_t gb_numel = static_cast<size_t>(params_[1].grad.numel());

  Tensor grad_input(cached_input_.shape());

  // Mirror Forward's dispatch: planned shapes run the data-gradient and
  // weight-gradient GEMMs through the plan layer.
  if (ctx->deterministic()) {
    if (!plan_ || plan_->batch() != batch) {
      plan_ = kernels::PlanCache::Instance().GetLinearPlan(batch, in_features_,
                                                           out_features_);
    }
    if (plan_->algo() != kernels::LinearAlgo::kDirect) {
      plan_->Backward(cached_input_.data(), weight, grad_output.data(),
                      grad_input.data(), grad_weight, grad_bias, ctx->pool());
      std::vector<Tensor> grads;
      grads.push_back(std::move(grad_input));
      return grads;
    }
  }

  // Shard over samples. grad_input rows are disjoint per sample; weight and
  // bias gradients go into per-chunk scratch buffers reduced in fixed
  // chunk-index order below, so the result never depends on the pool size.
  const int64_t grain = util::GrainForMaxChunks(batch, kMaxBackwardChunks);
  const size_t num_chunks = static_cast<size_t>(util::NumChunks(batch, grain));
  const size_t scratch_stride = gw_numel + gb_numel;
  std::vector<float> grad_scratch(num_chunks * scratch_stride, 0.0f);
  util::ParallelFor(
      ctx->pool(), batch, grain,
      [&](int64_t n_begin, int64_t n_end, size_t chunk_index) {
        float* gw_chunk = grad_scratch.data() + chunk_index * scratch_stride;
        float* gb_chunk = gw_chunk + gw_numel;
        for (int64_t n = n_begin; n < n_end; ++n) {
          const float* gout = grad_output.data() + n * out_features_;
          const float* row = cached_input_.data() + n * in_features_;
          float* gin = grad_input.data() + n * in_features_;
          for (int64_t o = 0; o < out_features_; ++o) {
            const float g = gout[o];
            gb_chunk[o] += g;
            const float* wrow = weight + o * in_features_;
            float* gwrow = gw_chunk + o * in_features_;
            for (int64_t i = 0; i < in_features_; ++i) {
              gwrow[i] += g * row[i];
              gin[i] += g * wrow[i];
            }
          }
        }
      });

  // Fixed-order reduction; chunk boundaries are thread-count independent,
  // so this sum is bit-exact for every pool size.
  for (size_t c = 0; c < num_chunks; ++c) {
    const float* gw_chunk = grad_scratch.data() + c * scratch_stride;
    const float* gb_chunk = gw_chunk + gw_numel;
    for (size_t j = 0; j < gw_numel; ++j) {
      grad_weight[j] += gw_chunk[j];
    }
    for (size_t j = 0; j < gb_numel; ++j) {
      grad_bias[j] += gb_chunk[j];
    }
  }

  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace mmlib::nn
