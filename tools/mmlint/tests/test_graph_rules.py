"""Call-graph rules: function indexing, wall-clock, unordered-order-leak,
and crash-point coverage, against fixtures with golden findings."""

import unittest

from tools.mmlint import callgraph, engine
from tools.mmlint.tests.util import (as_triples, fixture_context, golden,
                                     make_context)


class FunctionIndexTest(unittest.TestCase):
    def test_qualified_names_and_calls(self):
        ctx = make_context(
            "src/core/a.cc",
            "namespace mmlib {\n"
            "Status Store::Save(int id) {\n"
            "  Helper(id);\n"
            "  return OkStatus();\n"
            "}\n"
            "void Helper(int id) { Log(id); }\n"
            "}  // namespace mmlib\n")
        index = callgraph.build_index([ctx])
        names = sorted(f.qualified for f in index.functions)
        self.assertEqual(names, ["Helper", "Store::Save"])
        save = index.by_name["Save"][0]
        self.assertIn("Helper", [c for c, _ in save.calls])

    def test_control_flow_keywords_are_not_calls(self):
        ctx = make_context(
            "src/core/a.cc",
            "int F(int x) {\n"
            "  if (x) { while (x) { x = static_cast<int>(x - 1); } }\n"
            "  for (int i = 0; i < x; ++i) { x += i; }\n"
            "  return x;\n"
            "}\n")
        index = callgraph.build_index([ctx])
        self.assertEqual(len(index.functions), 1)
        self.assertEqual(index.functions[0].calls, [])

    def test_crash_points_recorded_with_site_names(self):
        ctx = fixture_context("crash_coverage.cc")
        index = callgraph.build_index([ctx])
        sites = {name for fn in index.functions
                 for name, _ in fn.crash_points}
        self.assertEqual(sites, {"fixture.covered.before_write",
                                 "fixture.helper",
                                 "fixture.async.enqueue"})

    def test_macro_definition_is_not_a_call_site(self):
        ctx = fixture_context("crash_coverage.cc")
        index = callgraph.build_index([ctx])
        # FIXTURE_WRITE's body mentions AtomicWriteFile inside a #define;
        # only the four in-function calls may count.
        calls = sum(1 for fn in index.functions
                    for c, _ in fn.calls if c == "AtomicWriteFile")
        self.assertEqual(calls, 4)

    def test_reachability_is_name_merged(self):
        a = make_context("src/core/a.cc",
                         "void Entry() { Step(); }\n")
        b = make_context("src/repl/b.cc",
                         "void Impl::Step() { Leaf(); }\n"
                         "void Leaf() {}\n")
        index = callgraph.build_index([a, b])
        roots = index.by_name["Entry"]
        reached = callgraph.reachable_functions(index, roots)
        reached_names = {f.name for f in index.functions
                         if id(f) in reached}
        self.assertEqual(reached_names, {"Entry", "Step", "Leaf"})


class WallClockTest(unittest.TestCase):
    def run_rule(self, ctx):
        findings = []
        callgraph.check_wall_clock(ctx, findings)
        engine.apply_suppressions([ctx], findings)
        return findings

    def test_fixture(self):
        ctx = fixture_context("wall_clock.cc")
        self.assertEqual(as_triples(self.run_rule(ctx)),
                         golden("wall_clock.expected.json"))

    def test_util_and_simnet_are_exempt(self):
        body = ("long Now() {\n"
                "  return std::chrono::steady_clock::now()"
                ".time_since_epoch().count();\n"
                "}\n")
        for path in ("src/util/clock.cc", "src/simnet/virtual_clock.cc"):
            self.assertEqual(self.run_rule(make_context(path, body)), [])

    def test_tests_are_exempt(self):
        ctx = make_context("tests/timing_test.cc",
                           "long T() { return clock(); }\n")
        self.assertEqual(self.run_rule(ctx), [])


class UnorderedLeakTest(unittest.TestCase):
    def run_rule(self, contexts):
        index = callgraph.build_index(contexts)
        findings = []
        callgraph.check_unordered_order_leak(contexts, index, findings)
        engine.apply_suppressions(contexts, findings)
        return findings

    def test_fixture(self):
        ctx = fixture_context("unordered_leak.cc")
        self.assertEqual(as_triples(self.run_rule([ctx])),
                         golden("unordered_leak.expected.json"))

    def test_sink_by_module(self):
        ctx = make_context(
            "src/hash/digest.cc",
            "uint64_t Mix(const std::unordered_set<int>& s) {\n"
            "  uint64_t h = 0;\n"
            "  for (int v : s) { h = h * 31 + v; }\n"
            "  return h;\n"
            "}\n")
        findings = self.run_rule([ctx])
        self.assertEqual(len(findings), 1)
        self.assertEqual(findings[0].rule, "no-unordered-order-leak")

    def test_cross_file_transitive_sink(self):
        caller = make_context(
            "src/models/walk.cc",
            "void Walk(const std::unordered_map<int, int>& m,"
            " BytesWriter* w) {\n"
            "  for (const auto& kv : m) { Emit(kv.first); }\n"
            "}\n"
            "void Emit(int v) { WriteTagged(v); }\n")
        sink = make_context(
            "src/json/writer.cc",
            "void BytesWriter::WriteTagged(int v) { buf_.push_back(v); }\n")
        findings = self.run_rule([caller, sink])
        self.assertEqual([f.rule for f in findings],
                         ["no-unordered-order-leak"])
        self.assertEqual(findings[0].path, "src/models/walk.cc")


class CrashCoverageTest(unittest.TestCase):
    def test_fixture(self):
        ctx = fixture_context("crash_coverage.cc")
        index = callgraph.build_index([ctx])
        findings = []
        sites = callgraph.check_crash_point_coverage(index, findings)
        engine.apply_suppressions([ctx], findings)

        self.assertEqual(as_triples(findings),
                         golden("crash_coverage.expected.json"))
        by_fn = {s.function: s for s in sites}
        self.assertEqual(len(sites), 6)
        self.assertTrue(by_fn["CoveredWrite"].covered)
        self.assertTrue(by_fn["HelperWrite"].covered)
        self.assertFalse(by_fn["UncoveredWrite"].covered)
        self.assertFalse(by_fn["AllowedUncovered"].covered)
        self.assertTrue(by_fn["CoveredAsyncHandoff"].covered)
        self.assertFalse(by_fn["UncoveredAsyncHandoff"].covered)
        self.assertEqual(by_fn["CoveredWrite"].crash_sites,
                         ["fixture.covered.before_write"])
        self.assertEqual(by_fn["CoveredAsyncHandoff"].crash_sites,
                         ["fixture.async.enqueue"])

        summary = callgraph.coverage_summary(sites)
        self.assertEqual(summary["persistence_call_sites"], 6)
        self.assertEqual(summary["covered"], 3)
        self.assertEqual(summary["coverage_percent"], 50.0)

    def test_collective_sinks_are_coverage_sites(self):
        ctx = fixture_context("collective_coverage.cc")
        index = callgraph.build_index([ctx])
        findings = []
        sites = callgraph.check_crash_point_coverage(index, findings)
        engine.apply_suppressions([ctx], findings)

        self.assertEqual(as_triples(findings),
                         golden("collective_coverage.expected.json"))
        by_site = {(s.function, s.sink): s for s in sites}
        self.assertEqual(len(sites), 4)
        self.assertTrue(by_site[("RingLoop", "SendChunk")].covered)
        self.assertTrue(by_site[("RingLoop", "ReduceChunk")].covered)
        self.assertTrue(by_site[("CoveredCommit", "CommitStep")].covered)
        self.assertFalse(by_site[("UncoveredCommit", "CommitStep")].covered)
        # Coverage flows through the sink's own guarded definition, naming
        # the collective crash sites the flow's crash matrix schedules.
        self.assertEqual(by_site[("RingLoop", "SendChunk")].crash_sites,
                         ["collective.reduce", "collective.send"])

    def test_serve_sinks_are_coverage_sites(self):
        ctx = fixture_context("serve_coverage.cc")
        index = callgraph.build_index([ctx])
        findings = []
        sites = callgraph.check_crash_point_coverage(index, findings)
        engine.apply_suppressions([ctx], findings)

        self.assertEqual(as_triples(findings),
                         golden("serve_coverage.expected.json"))
        by_site = {(s.function, s.sink): s for s in sites}
        self.assertEqual(len(sites), 4)
        self.assertTrue(by_site[("EventLoop", "AdmitRequest")].covered)
        self.assertTrue(by_site[("EventLoop", "DispatchRequest")].covered)
        self.assertTrue(by_site[("CoveredReply", "DeliverReply")].covered)
        self.assertFalse(by_site[("UncoveredReply", "DeliverReply")].covered)
        # The guarded sink definitions name the serving crash sites the
        # degraded-mode serving tests schedule kills at.
        self.assertEqual(by_site[("EventLoop", "AdmitRequest")].crash_sites,
                         ["serve.admit", "serve.dispatch"])

    def test_coverage_through_helper_call_chain(self):
        ctx = make_context(
            "src/filestore/fs_write.cc",
            "void Outer(const std::string& p, const std::string& b) {\n"
            "  AtomicWriteFile(p, b);\n"
            "}\n"
            "void AtomicWriteFile(const std::string& p,"
            " const std::string& b) {\n"
            "  MMLIB_CRASH_POINT(\"fs.write\");\n"
            "  RawWrite(p, b);\n"
            "}\n")
        index = callgraph.build_index([ctx])
        findings = []
        sites = callgraph.check_crash_point_coverage(index, findings)
        # Outer's site is covered because the sink's own definition
        # registers a crash point reachable through the call edge.
        self.assertEqual(findings, [])
        self.assertEqual(len(sites), 1)
        self.assertTrue(sites[0].covered)

    def test_whole_repo_coverage_is_total(self):
        contexts = [c for c in
                    engine.make_contexts(engine.collect_repo_files())
                    if c.relpath.startswith("src/")]
        index = callgraph.build_index(contexts)
        findings = []
        sites = callgraph.check_crash_point_coverage(index, findings)
        self.assertEqual([str(f) for f in findings], [])
        self.assertGreater(len(sites), 0)
        self.assertTrue(all(s.covered for s in sites))


if __name__ == "__main__":
    unittest.main()
