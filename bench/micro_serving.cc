/// Serving front-end microbenchmark: drives the overload-robust
/// multi-tenant front end (src/serve/) with seeded open-loop workloads on
/// the virtual clock and prices its robustness machinery. Sweeps offered
/// load to locate the saturation throughput, then doubles it and verifies
/// that admission control keeps goodput at >= 80% of saturation with a
/// bounded admitted-request p99 (load shedding, not collapse). Degraded
/// scenarios — a replica crash mid-run and a minority partition — must land
/// bit-identical per seed (run twice, digests compared). A CoreBackend run
/// serves real save/recover/probe/inference ops over replicated stores and
/// reports the hedged-read traffic. Writes BENCH_serving.json. `--smoke`
/// shrinks the horizons and gates only the bit-identity invariants (exit
/// code), not the throughput numbers.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/baseline.h"
#include "core/model_code.h"
#include "core/recover.h"
#include "json/json.h"
#include "repl/replicated_store.h"
#include "serve/backend.h"
#include "serve/core_backend.h"
#include "serve/frontend.h"
#include "serve/workload.h"

using namespace mmlib;

namespace {

bool g_smoke = false;

constexpr uint64_t kSeed = 0x5e41e5;

double HorizonSeconds() { return g_smoke ? 1.0 : 10.0; }

enum class Degradation { kNone, kReplicaCrash, kMinorityPartition };

const char* DegradationName(Degradation d) {
  switch (d) {
    case Degradation::kNone:
      return "healthy";
    case Degradation::kReplicaCrash:
      return "replica_crash";
    case Degradation::kMinorityPartition:
      return "minority_partition";
  }
  return "?";
}

/// One seeded run of the simulated-backend scenario: 3 coordinator nodes
/// over 3 backends, each bound to a simnet replica.
serve::ServeReport RunSimulated(double rate, Degradation degradation,
                                uint64_t seed) {
  simnet::Network network(simnet::Link{1e9, 1e-4});
  network.ConfigureReplicas(3);
  const double horizon = HorizonSeconds();
  switch (degradation) {
    case Degradation::kNone:
      break;
    case Degradation::kReplicaCrash:
      network.ScheduleReplicaCrash(1, 0.2 * horizon);
      network.ScheduleReplicaRestart(1, 0.6 * horizon);
      break;
    case Degradation::kMinorityPartition:
      network.SchedulePartition(0.2 * horizon, {{2}});
      network.ScheduleHeal(0.6 * horizon);
      break;
  }

  serve::SimulatedBackendOptions backend_options;
  backend_options.seed = seed ^ 0xbacULL;
  std::vector<std::unique_ptr<serve::SimulatedBackend>> backends;
  std::vector<serve::ServeBackend*> backend_ptrs;
  for (size_t r = 0; r < 3; ++r) {
    backends.push_back(
        std::make_unique<serve::SimulatedBackend>(backend_options, &network, r));
    backend_ptrs.push_back(backends.back().get());
  }

  serve::FrontendOptions options;
  options.node_count = 3;
  options.workers_per_node = 4;
  options.tenant_count = 4;
  options.queue.per_tenant_capacity = 32;
  options.breaker.failure_threshold = 4;
  options.breaker.open_seconds = 0.25;
  options.seed = seed ^ 0xf207ULL;
  serve::ServingFrontend frontend(options, backend_ptrs, &network);

  serve::WorkloadSpec spec;
  spec.arrival_rate_per_second = rate;
  spec.horizon_seconds = horizon;
  spec.deadline_seconds = 0.5;
  spec.seed = seed;
  serve::WorkloadGenerator workload(spec, options.tenant_count);
  return frontend.Run(workload);
}

struct CoreRunOutcome {
  serve::ServeReport report;
  uint64_t hook_reports = 0;
};

/// Real core services behind the front end: baseline saves, recovers,
/// probes, and hedged inference reads over 3-way replicated stores. A
/// replica crash mid-run makes the hedged-read path earn its keep.
CoreRunOutcome RunCore(uint64_t seed) {
  simnet::Network network(bench::StorageServiceLink());
  network.ConfigureReplicas(3);
  const double horizon = g_smoke ? 1.0 : 4.0;
  network.ScheduleReplicaCrash(0, 0.3 * horizon);
  network.ScheduleReplicaRestart(0, 0.8 * horizon);

  std::vector<std::unique_ptr<filestore::InMemoryFileStore>> file_backends;
  std::vector<std::unique_ptr<docstore::InMemoryDocumentStore>> doc_backends;
  std::vector<std::unique_ptr<filestore::RemoteFileStore>> file_transports;
  std::vector<std::unique_ptr<docstore::RemoteDocumentStore>> doc_transports;
  std::vector<filestore::RemoteFileStore*> file_ptrs;
  std::vector<docstore::RemoteDocumentStore*> doc_ptrs;
  for (size_t r = 0; r < 3; ++r) {
    file_backends.push_back(std::make_unique<filestore::InMemoryFileStore>());
    doc_backends.push_back(std::make_unique<docstore::InMemoryDocumentStore>());
    auto ft = std::make_unique<filestore::RemoteFileStore>(
        file_backends.back().get(), &network);
    ft->BindReplica(r);
    auto dt = std::make_unique<docstore::RemoteDocumentStore>(
        doc_backends.back().get(), &network);
    dt->BindReplica(r);
    file_ptrs.push_back(ft.get());
    doc_ptrs.push_back(dt.get());
    file_transports.push_back(std::move(ft));
    doc_transports.push_back(std::move(dt));
  }
  auto files = repl::ReplicatedFileStore::Create(file_ptrs, &network).value();
  auto docs = repl::ReplicatedDocumentStore::Create(doc_ptrs, &network).value();

  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  auto model = models::BuildModel(config).value();
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  core::StorageBackends backends{docs.get(), files.get(), &network};
  core::BaselineSaveService save_service(backends);
  core::ModelRecoverer recoverer(backends);

  serve::CoreBackendContext context;
  context.save_service = &save_service;
  context.recoverer = &recoverer;
  context.docs = docs.get();
  context.files = files.get();
  context.network = &network;
  context.model = &model;
  context.environment = &environment;
  context.code = core::CodeDescriptorFor(config);
  context.seed = seed;

  for (int i = 0; i < 2; ++i) {
    core::SaveRequest request;
    request.model = &model;
    request.code = context.code;
    request.environment = &environment;
    auto saved = save_service.SaveModel(request);
    if (!saved.ok()) {
      std::cerr << "pre-save failed: " << saved.status() << "\n";
      std::abort();
    }
    context.model_ids.push_back(saved.value().model_id);
  }
  context.file_ids = files->ListFileIds().value();

  serve::CoreBackend backend(context);
  std::vector<serve::ServeBackend*> backend_ptrs = {&backend};

  serve::FrontendOptions options;
  options.node_count = 1;
  options.workers_per_node = 2;
  options.tenant_count = 2;
  options.seed = seed ^ 0xf207ULL;
  serve::ServingFrontend frontend(options, backend_ptrs, &network);

  serve::WorkloadSpec spec;
  spec.arrival_rate_per_second = g_smoke ? 20.0 : 40.0;
  spec.horizon_seconds = horizon;
  spec.deadline_seconds = 0.0;  // core ops run to completion
  spec.seed = seed;
  serve::WorkloadGenerator workload(spec, options.tenant_count);

  CoreRunOutcome outcome;
  outcome.report = frontend.Run(workload);
  outcome.report.counters.hedged_reads = backend.hedged_reads();
  outcome.report.counters.hedge_wins = backend.hedge_wins();
  outcome.hook_reports = backend.hook_reports();
  return outcome;
}

json::Value ReportRow(double rate, const serve::ServeReport& r) {
  json::Value row = json::Value::MakeObject();
  row.Set("offered_rps", rate);
  row.Set("arrivals", static_cast<int64_t>(r.counters.arrivals));
  row.Set("admitted", static_cast<int64_t>(r.counters.admitted));
  row.Set("served", static_cast<int64_t>(r.counters.served()));
  row.Set("shed", static_cast<int64_t>(r.counters.shed()));
  row.Set("goodput_rps", r.goodput_rps);
  row.Set("p50_ms", r.latency.Quantile(0.50) * 1e3);
  row.Set("p99_ms", r.latency.Quantile(0.99) * 1e3);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    }
  }

  bench::PrintHeader(
      "micro_serving", "Overload-robust serving front end",
      "3 coordinator nodes x 4 workers over 3 simulated backends on simnet\n"
      "(Poisson arrivals, 4 tenants, 500 ms deadlines). Sweeps offered load\n"
      "for the saturation throughput, doubles it to price admission control,\n"
      "then prices degraded runs (replica crash, minority partition) and a\n"
      "CoreBackend run with real save/recover/probe/hedged-inference ops.\n"
      "Every scenario runs twice; digests must match (bit-identity).");
  if (g_smoke) {
    std::printf("(smoke mode: 1 s horizons, throughput gates skipped)\n\n");
  }

  bool deterministic = true;
  auto check_identical = [&deterministic](const serve::ServeReport& a,
                                          const serve::ServeReport& b,
                                          const char* what) {
    if (a.Digest() != b.Digest()) {
      std::printf("BIT-IDENTITY FAILURE: %s\n", what);
      deterministic = false;
    }
  };

  // --- Load sweep: find saturation -----------------------------------------
  const std::vector<double> rates =
      g_smoke ? std::vector<double>{500, 2000}
              : std::vector<double>{500, 1000, 2000, 3000, 4000, 6000};
  TablePrinter table({"offered rps", "arrivals", "served", "shed",
                      "goodput rps", "p50", "p99"});
  json::Value sweep_rows = json::Value::MakeArray();
  double saturation_goodput = 0.0;
  double saturation_rate = rates.front();
  for (double rate : rates) {
    const serve::ServeReport report =
        RunSimulated(rate, Degradation::kNone, kSeed);
    check_identical(report, RunSimulated(rate, Degradation::kNone, kSeed),
                    "load sweep rerun");
    if (report.goodput_rps > saturation_goodput) {
      saturation_goodput = report.goodput_rps;
      saturation_rate = rate;
    }
    table.AddRow({std::to_string(static_cast<int>(rate)),
                  std::to_string(report.counters.arrivals),
                  std::to_string(report.counters.served()),
                  std::to_string(report.counters.shed()),
                  std::to_string(static_cast<int>(report.goodput_rps)),
                  bench::Millis(report.latency.Quantile(0.50)),
                  bench::Millis(report.latency.Quantile(0.99))});
    sweep_rows.Append(ReportRow(rate, report));
  }
  table.Print(std::cout);

  // --- 2x saturation: shedding must preserve goodput -----------------------
  const double overload_rate = 2.0 * saturation_rate;
  const serve::ServeReport overloaded =
      RunSimulated(overload_rate, Degradation::kNone, kSeed);
  check_identical(overloaded,
                  RunSimulated(overload_rate, Degradation::kNone, kSeed),
                  "overload rerun");
  const double retention =
      saturation_goodput > 0.0 ? overloaded.goodput_rps / saturation_goodput
                               : 0.0;
  const bool goodput_holds = g_smoke || retention >= 0.8;
  std::printf(
      "\nsaturation %.0f rps at offered %.0f | 2x offered %.0f rps -> goodput "
      "%.0f rps (%.0f%% of saturation, p99 %s, shed %llu): %s\n",
      saturation_goodput, saturation_rate, overload_rate,
      overloaded.goodput_rps, retention * 100.0,
      bench::Millis(overloaded.latency.Quantile(0.99)).c_str(),
      static_cast<unsigned long long>(overloaded.counters.shed()),
      goodput_holds ? "holds" : "COLLAPSED");

  // --- Degraded scenarios: priced and bit-identical ------------------------
  json::Value degraded_rows = json::Value::MakeArray();
  const double degraded_rate = g_smoke ? 800.0 : 1500.0;
  for (Degradation mode :
       {Degradation::kReplicaCrash, Degradation::kMinorityPartition}) {
    const serve::ServeReport report = RunSimulated(degraded_rate, mode, kSeed);
    check_identical(report, RunSimulated(degraded_rate, mode, kSeed),
                    DegradationName(mode));
    std::printf(
        "%s @ %.0f rps: served %llu/%llu, trips %llu, probes %llu, "
        "recoveries %llu, fast-rejects %llu\n",
        DegradationName(mode), degraded_rate,
        static_cast<unsigned long long>(report.counters.served()),
        static_cast<unsigned long long>(report.counters.arrivals),
        static_cast<unsigned long long>(report.counters.breaker_trips),
        static_cast<unsigned long long>(report.counters.breaker_probes),
        static_cast<unsigned long long>(report.counters.breaker_recoveries),
        static_cast<unsigned long long>(report.counters.breaker_fast_rejects));
    json::Value row = ReportRow(degraded_rate, report);
    row.Set("scenario", std::string(DegradationName(mode)));
    row.Set("breaker_trips",
            static_cast<int64_t>(report.counters.breaker_trips));
    row.Set("breaker_probes",
            static_cast<int64_t>(report.counters.breaker_probes));
    row.Set("breaker_recoveries",
            static_cast<int64_t>(report.counters.breaker_recoveries));
    row.Set("breaker_fast_rejects",
            static_cast<int64_t>(report.counters.breaker_fast_rejects));
    row.Set("backend_failures",
            static_cast<int64_t>(report.counters.backend_failures));
    row.Set("digest", report.Digest());
    degraded_rows.Append(std::move(row));
  }

  // --- CoreBackend: real ops, hedged reads ---------------------------------
  const CoreRunOutcome core = RunCore(kSeed);
  check_identical(core.report, RunCore(kSeed).report, "core backend rerun");
  std::printf(
      "core backend (replica 0 down mid-run): served %llu/%llu, hook reports "
      "%llu, hedged reads %llu (wins %llu)\n",
      static_cast<unsigned long long>(core.report.counters.served()),
      static_cast<unsigned long long>(core.report.counters.arrivals),
      static_cast<unsigned long long>(core.hook_reports),
      static_cast<unsigned long long>(core.report.counters.hedged_reads),
      static_cast<unsigned long long>(core.report.counters.hedge_wins));

  // --- BENCH_serving.json --------------------------------------------------
  json::Value doc = json::Value::MakeObject();
  doc.Set("bench", "micro_serving");
  bench::SetHostMetadata(&doc, /*pool_size=*/0);
  doc.Set("smoke", g_smoke);
  doc.Set("horizon_seconds", HorizonSeconds());
  doc.Set("load_sweep", std::move(sweep_rows));

  json::Value saturation_doc = json::Value::MakeObject();
  saturation_doc.Set("throughput_rps", saturation_goodput);
  saturation_doc.Set("offered_rps", saturation_rate);
  doc.Set("saturation", std::move(saturation_doc));

  json::Value overload_doc = ReportRow(overload_rate, overloaded);
  overload_doc.Set("goodput_vs_saturation", retention);
  overload_doc.Set("shed_queue_full",
                   static_cast<int64_t>(overloaded.counters.shed_queue_full));
  overload_doc.Set("batched",
                   static_cast<int64_t>(overloaded.counters.batched));
  overload_doc.Set("batches_flushed",
                   static_cast<int64_t>(overloaded.counters.batches_flushed));
  doc.Set("overload_2x", std::move(overload_doc));

  doc.Set("degraded", std::move(degraded_rows));

  json::Value core_doc = ReportRow(g_smoke ? 20.0 : 40.0, core.report);
  core_doc.Set("hook_reports", static_cast<int64_t>(core.hook_reports));
  core_doc.Set("hedged_reads",
               static_cast<int64_t>(core.report.counters.hedged_reads));
  core_doc.Set("hedge_wins",
               static_cast<int64_t>(core.report.counters.hedge_wins));
  core_doc.Set("digest", core.report.Digest());
  doc.Set("core_backend", std::move(core_doc));

  doc.Set("deterministic", deterministic);
  doc.Set("goodput_retention_ok", goodput_holds);

  const std::string json_text = doc.DumpPretty();
  std::FILE* out = std::fopen("BENCH_serving.json", "w");
  if (out != nullptr) {
    std::fwrite(json_text.data(), 1, json_text.size(), out);
    std::fputc('\n', out);
    std::fclose(out);
    std::printf("\nwrote BENCH_serving.json\n");
  }

  const bool ok = deterministic && goodput_holds;
  std::printf("bit-identity and goodput retention: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
