#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace mmlib::simnet {

/// Bandwidth/latency cost model of one network link.
struct Link {
  double bandwidth_bytes_per_second = 12.5e9;  // 100 Gbit/s InfiniBand
  double latency_seconds = 2e-6;

  /// Time to move `bytes` over this link (one message).
  double TransferSeconds(uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// The paper's evaluation link: 100G InfiniBand.
  static Link InfiniBand100G() { return Link{}; }

  /// A constrained uplink, e.g. a vehicle's cellular connection — the
  /// motivating scenario where saving bytes matters most (Section 1).
  static Link Cellular50M() { return Link{6.25e6, 30e-3}; }
};

/// Deterministic failure model for the simulated network: every message
/// draws one uniform sample from a seeded Rng and either succeeds, is
/// dropped (transient Unavailable), times out (DeadlineExceeded, charged
/// `timeout_seconds` of virtual time), or arrives with a corrupted payload.
/// The draw sequence depends only on the order of Transfer calls — the
/// save/recover pipeline issues them serially — so the exact same faults
/// fire on every run with the same seed, at any thread-pool size.
struct FaultPlan {
  /// Probability a message is lost in flight (receiver never sees it).
  /// Charged link latency only.
  double drop_probability = 0.0;
  /// Probability a message exceeds its deadline. Charged `timeout_seconds`.
  double timeout_probability = 0.0;
  /// Probability a delivered payload is damaged in flight. Charged the full
  /// transfer time; the payload has one deterministic byte flipped.
  double corrupt_probability = 0.0;
  /// Virtual time consumed by a timed-out message before the sender gives
  /// up on it.
  double timeout_seconds = 0.5;
  /// Seed of the fault-decision stream.
  uint64_t seed = 0x5eedfa17;

  bool active() const {
    return drop_probability > 0.0 || timeout_probability > 0.0 ||
           corrupt_probability > 0.0;
  }
};

/// Virtual-time cost of node lifecycle events. Detection models the failure
/// detector noticing a dead peer; restart models reboot plus process
/// start-up before the node serves again.
struct NodeCosts {
  double crash_detect_seconds = 0.05;
  double restart_seconds = 0.5;
};

/// Outcome of one message attempt under the active fault plan.
struct TransferAttempt {
  /// OK, Unavailable (dropped), or DeadlineExceeded (timed out).
  Status status = Status::OK();
  /// True when the message was delivered but its payload was damaged in
  /// flight. Only meaningful when `status` is OK.
  bool corrupted = false;
  /// Virtual time charged for this attempt.
  double seconds = 0.0;
};

/// Simulated network shared by the hosts of a distributed evaluation flow.
/// Every transfer advances a virtual clock and is accounted, so experiments
/// are deterministic and instantaneous regardless of modeled data volume.
class Network {
 public:
  explicit Network(Link link) : link_(link), fault_rng_(FaultPlan{}.seed) {}
  Network() : Network(Link::InfiniBand100G()) {}

  const Link& link() const { return link_; }

  /// Installs a failure model and reseeds the fault stream; replaces any
  /// previous plan. Pass a default-constructed FaultPlan to disable faults.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Charges one message of `bytes` to the virtual clock; returns the
  /// transfer time in seconds. Never fails — the fault-free cost-model path
  /// used by callers that only model bandwidth (benchmarks, stats queries).
  double Transfer(uint64_t bytes);

  /// Attempts one message of `bytes` under the fault plan. On success
  /// charges the transfer time; a drop charges latency only; a timeout
  /// charges `timeout_seconds`. With no active plan this is exactly
  /// Transfer.
  TransferAttempt TryTransfer(uint64_t bytes);

  /// Deterministically flips one byte of `payload` (no-op when empty);
  /// called by remote-store clients when TryTransfer reports corruption on
  /// a payload-carrying response.
  void CorruptPayload(Bytes* payload);

  /// Advances the virtual clock without sending a message — models a sender
  /// waiting out a retry backoff.
  void ChargeSeconds(double seconds);

  /// --- Node lifecycle (crash-tolerant distributed flows). ---
  /// Declares `count` participant nodes, all up. Replaces previous state.
  void ConfigureNodes(size_t count);
  size_t NodeCount() const { return node_up_.size(); }

  /// True when `node` is configured and currently up.
  bool IsNodeUp(size_t node) const {
    return node < node_up_.size() && node_up_[node];
  }

  /// Kills a node: charges the failure-detection time and marks the node
  /// down, so messages to it fail Unavailable (feeding the Retrier).
  /// InvalidArgument for an unconfigured node, FailedPrecondition when
  /// already down.
  Status CrashNode(size_t node);

  /// Brings a crashed node back: charges the restart time and marks the
  /// node up. InvalidArgument / FailedPrecondition mirror CrashNode.
  Status RestartNode(size_t node);

  void set_node_costs(const NodeCosts& costs) { node_costs_ = costs; }
  const NodeCosts& node_costs() const { return node_costs_; }

  /// Attempts one message of `bytes` addressed to `node`. While the node is
  /// down the message fails Unavailable after one latency charge — the
  /// sender's Retrier backs off and retries until the node restarts (or its
  /// attempts run out). An up node behaves exactly like TryTransfer.
  TransferAttempt TryTransferToNode(size_t node, uint64_t bytes);

  /// Lifecycle counters since the last Reset.
  uint64_t CrashCount() const { return crash_count_; }
  uint64_t RestartCount() const { return restart_count_; }
  /// Messages that failed because their destination node was down.
  uint64_t DownNodeRejectCount() const { return down_node_reject_count_; }

  /// Total simulated time spent in transfers (including faulted attempts
  /// and backoff waits).
  double TotalTransferSeconds() const { return clock_.NowSeconds(); }

  /// Total bytes moved by successful messages.
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Number of messages attempted (successful or faulted).
  uint64_t MessageCount() const { return message_count_; }

  /// Fault counters since the last Reset/set_fault_plan.
  uint64_t DropCount() const { return drop_count_; }
  uint64_t TimeoutCount() const { return timeout_count_; }
  uint64_t CorruptionCount() const { return corruption_count_; }
  uint64_t FaultCount() const {
    return drop_count_ + timeout_count_ + corruption_count_;
  }

  void Reset();

 private:
  Link link_;
  VirtualClock clock_;
  FaultPlan fault_plan_;
  Rng fault_rng_;
  NodeCosts node_costs_;
  std::vector<bool> node_up_;
  uint64_t total_bytes_ = 0;
  uint64_t message_count_ = 0;
  uint64_t drop_count_ = 0;
  uint64_t timeout_count_ = 0;
  uint64_t corruption_count_ = 0;
  uint64_t crash_count_ = 0;
  uint64_t restart_count_ = 0;
  uint64_t down_node_reject_count_ = 0;
};

}  // namespace mmlib::simnet
