# Empty compiler generated dependencies file for ablation_optimizer_state.
# This may be replaced when dependencies are built.
