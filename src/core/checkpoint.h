#pragma once

#include <cstdint>
#include <string>

#include "core/types.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/result.h"

namespace mmlib::core {

/// Collection holding checkpoint metadata documents.
inline constexpr const char* kCheckpointsCollection = "checkpoints";

/// Everything a deterministic training run needs to continue mid-stream and
/// land bit-identically on the uninterrupted result: the model parameters,
/// the optimizer's accumulated state (momentum/Adam moments *and* the
/// scheduled learning rate), the execution context's RNG cursor (dropout
/// and augmentation draws consumed so far), and the data-loader position.
/// The loader itself is stateless given (seed, epoch, batch), so its
/// position is just the two indices.
struct TrainCheckpoint {
  std::string run_id;
  /// Optimizer steps completed.
  int64_t step = 0;
  /// Epoch the run was in when the checkpoint was taken.
  int64_t epoch = 0;
  /// Next batch index within `epoch` (may equal the batch count, meaning
  /// the epoch's batches are done but its LR decay has not applied yet —
  /// resume re-applies it, exactly like the uninterrupted run would have).
  int64_t next_batch = 0;
  Bytes model_params;
  Bytes optimizer_state;
  RngState rng;
  float last_loss = 0.0f;
};

struct CheckpointOptions {
  /// Persist a checkpoint every this many optimizer steps (plus one at step
  /// zero when a run starts, so even an immediate crash loses nothing that
  /// was handed to the run).
  int64_t every_steps = 1;
  /// Delete a run's older checkpoints after each successful write; only the
  /// latest is ever needed, and pruning keeps checkpoint storage O(1).
  bool prune_previous = true;
};

/// Persists and restores training checkpoints through the storage backends.
/// Writes go through a SaveTransaction, so with a journal attached a crash
/// mid-checkpoint rolls back cleanly on reopen and can never corrupt the
/// latest complete checkpoint — the write-ahead guarantee extends to
/// training state. Crash site "checkpoint.write".
class CheckpointManager {
 public:
  CheckpointManager(const StorageBackends& backends, CheckpointOptions options)
      : backends_(backends), options_(options) {}

  int64_t every_steps() const { return options_.every_steps; }

  /// Persists one checkpoint (params file + binary state file + metadata
  /// document) and prunes the run's older checkpoints. Returns the
  /// checkpoint document id.
  Result<std::string> Write(const TrainCheckpoint& checkpoint);

  /// Loads the run's checkpoint with the highest step into `out`; returns
  /// false when the run has none.
  Result<bool> LoadLatest(const std::string& run_id, TrainCheckpoint* out);

  /// Removes every checkpoint of a run (files and documents); call once
  /// the run's result is durably saved and the checkpoints are dead weight.
  Status DeleteRun(const std::string& run_id);

  /// Checkpoints successfully written by this manager.
  uint64_t checkpoints_written() const { return checkpoints_written_; }

 private:
  Status DeleteCheckpointDoc(const std::string& doc_id);

  StorageBackends backends_;
  CheckpointOptions options_;
  uint64_t checkpoints_written_ = 0;
};

}  // namespace mmlib::core
