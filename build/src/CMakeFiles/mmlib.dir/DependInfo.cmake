
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/codec.cc" "src/CMakeFiles/mmlib.dir/compress/codec.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/compress/codec.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/CMakeFiles/mmlib.dir/compress/huffman.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/compress/huffman.cc.o.d"
  "/root/repo/src/core/adaptive.cc" "src/CMakeFiles/mmlib.dir/core/adaptive.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/adaptive.cc.o.d"
  "/root/repo/src/core/baseline.cc" "src/CMakeFiles/mmlib.dir/core/baseline.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/baseline.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/CMakeFiles/mmlib.dir/core/catalog.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/catalog.cc.o.d"
  "/root/repo/src/core/evaluate.cc" "src/CMakeFiles/mmlib.dir/core/evaluate.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/evaluate.cc.o.d"
  "/root/repo/src/core/export.cc" "src/CMakeFiles/mmlib.dir/core/export.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/export.cc.o.d"
  "/root/repo/src/core/model_code.cc" "src/CMakeFiles/mmlib.dir/core/model_code.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/model_code.cc.o.d"
  "/root/repo/src/core/param_update.cc" "src/CMakeFiles/mmlib.dir/core/param_update.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/param_update.cc.o.d"
  "/root/repo/src/core/probe.cc" "src/CMakeFiles/mmlib.dir/core/probe.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/probe.cc.o.d"
  "/root/repo/src/core/provenance.cc" "src/CMakeFiles/mmlib.dir/core/provenance.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/provenance.cc.o.d"
  "/root/repo/src/core/recover.cc" "src/CMakeFiles/mmlib.dir/core/recover.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/recover.cc.o.d"
  "/root/repo/src/core/save_service.cc" "src/CMakeFiles/mmlib.dir/core/save_service.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/save_service.cc.o.d"
  "/root/repo/src/core/train_service.cc" "src/CMakeFiles/mmlib.dir/core/train_service.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/core/train_service.cc.o.d"
  "/root/repo/src/data/archive.cc" "src/CMakeFiles/mmlib.dir/data/archive.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/data/archive.cc.o.d"
  "/root/repo/src/data/dataloader.cc" "src/CMakeFiles/mmlib.dir/data/dataloader.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/data/dataloader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/mmlib.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/preprocess.cc" "src/CMakeFiles/mmlib.dir/data/preprocess.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/data/preprocess.cc.o.d"
  "/root/repo/src/dist/flow.cc" "src/CMakeFiles/mmlib.dir/dist/flow.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/dist/flow.cc.o.d"
  "/root/repo/src/docstore/document_store.cc" "src/CMakeFiles/mmlib.dir/docstore/document_store.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/docstore/document_store.cc.o.d"
  "/root/repo/src/env/environment.cc" "src/CMakeFiles/mmlib.dir/env/environment.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/env/environment.cc.o.d"
  "/root/repo/src/filestore/file_store.cc" "src/CMakeFiles/mmlib.dir/filestore/file_store.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/filestore/file_store.cc.o.d"
  "/root/repo/src/hash/merkle_tree.cc" "src/CMakeFiles/mmlib.dir/hash/merkle_tree.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/hash/merkle_tree.cc.o.d"
  "/root/repo/src/hash/sha256.cc" "src/CMakeFiles/mmlib.dir/hash/sha256.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/hash/sha256.cc.o.d"
  "/root/repo/src/json/json.cc" "src/CMakeFiles/mmlib.dir/json/json.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/json/json.cc.o.d"
  "/root/repo/src/models/builders.cc" "src/CMakeFiles/mmlib.dir/models/builders.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/models/builders.cc.o.d"
  "/root/repo/src/models/googlenet.cc" "src/CMakeFiles/mmlib.dir/models/googlenet.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/models/googlenet.cc.o.d"
  "/root/repo/src/models/mobilenet.cc" "src/CMakeFiles/mmlib.dir/models/mobilenet.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/models/mobilenet.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/CMakeFiles/mmlib.dir/models/resnet.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/models/resnet.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/CMakeFiles/mmlib.dir/models/zoo.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/models/zoo.cc.o.d"
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/mmlib.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/adam.cc" "src/CMakeFiles/mmlib.dir/nn/adam.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/adam.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/CMakeFiles/mmlib.dir/nn/batchnorm.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/batchnorm.cc.o.d"
  "/root/repo/src/nn/conv2d.cc" "src/CMakeFiles/mmlib.dir/nn/conv2d.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/conv2d.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/CMakeFiles/mmlib.dir/nn/layer.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/layer.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/mmlib.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/mmlib.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/model.cc" "src/CMakeFiles/mmlib.dir/nn/model.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/model.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/mmlib.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/pooling.cc" "src/CMakeFiles/mmlib.dir/nn/pooling.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/nn/pooling.cc.o.d"
  "/root/repo/src/simnet/network.cc" "src/CMakeFiles/mmlib.dir/simnet/network.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/simnet/network.cc.o.d"
  "/root/repo/src/tensor/shape.cc" "src/CMakeFiles/mmlib.dir/tensor/shape.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/tensor/shape.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/mmlib.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/util/bytes.cc" "src/CMakeFiles/mmlib.dir/util/bytes.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/bytes.cc.o.d"
  "/root/repo/src/util/clock.cc" "src/CMakeFiles/mmlib.dir/util/clock.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/clock.cc.o.d"
  "/root/repo/src/util/id_generator.cc" "src/CMakeFiles/mmlib.dir/util/id_generator.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/id_generator.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/mmlib.dir/util/random.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/mmlib.dir/util/status.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/status.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/mmlib.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/strings.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/mmlib.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/mmlib.dir/util/table_printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
