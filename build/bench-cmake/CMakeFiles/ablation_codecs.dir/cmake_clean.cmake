file(REMOVE_RECURSE
  "../bench/ablation_codecs"
  "../bench/ablation_codecs.pdb"
  "CMakeFiles/ablation_codecs.dir/ablation_codecs.cc.o"
  "CMakeFiles/ablation_codecs.dir/ablation_codecs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_codecs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
