#include <gtest/gtest.h>

#include <memory>

#include "core/adaptive.h"
#include "core/baseline.h"
#include "core/evaluate.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/provenance.h"
#include "core/recover.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "models/zoo.h"

namespace mmlib::core {
namespace {

models::ModelConfig TinyConfig(
    models::Architecture arch = models::Architecture::kMobileNetV2) {
  models::ModelConfig config = models::DefaultConfig(arch);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  return config;
}

TrainConfig TinyTrainConfig() {
  TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 1;
  config.loader.batch_size = 4;
  config.loader.image_size = 28;
  config.loader.num_classes = 10;
  config.sgd.momentum = 0.0f;
  return config;
}

/// Shared fixture: in-memory backends, tiny model, environment, code.
class SaveServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backends_ = StorageBackends{&docs_, &files_, nullptr};
    config_ = TinyConfig();
    code_ = CodeDescriptorFor(config_);
    environment_ = env::CollectEnvironment();
    auto model = models::BuildModel(config_);
    ASSERT_TRUE(model.ok());
    model_ = std::make_unique<nn::Model>(std::move(model).value());
    dataset_ = std::make_unique<data::SyntheticImageDataset>(
        data::PaperDatasetId::kCocoOutdoor512, /*size_divisor=*/4096);
  }

  SaveRequest MakeRequest(nn::Model* model, std::string base_id = "") {
    SaveRequest request;
    request.model = model;
    request.code = code_;
    request.environment = &environment_;
    request.base_model_id = std::move(base_id);
    return request;
  }

  /// Trains `model` via a fresh service, capturing provenance first.
  Result<ProvenanceData> TrainOnce(nn::Model* model, uint64_t seed) {
    TrainConfig config = TinyTrainConfig();
    config.seed = seed;
    config.loader.seed = seed;
    service_ = std::make_unique<ImageTrainService>(dataset_.get(), config);
    MMLIB_ASSIGN_OR_RETURN(ProvenanceData provenance,
                           service_->CaptureProvenance());
    MMLIB_RETURN_IF_ERROR(service_->Train(model, true, 0).status());
    return provenance;
  }

  docstore::InMemoryDocumentStore docs_;
  filestore::InMemoryFileStore files_;
  StorageBackends backends_;
  models::ModelConfig config_;
  json::Value code_;
  env::EnvironmentInfo environment_;
  std::unique_ptr<nn::Model> model_;
  std::unique_ptr<data::SyntheticImageDataset> dataset_;
  std::unique_ptr<ImageTrainService> service_;
};

// --- Code descriptors ---

TEST_F(SaveServiceTest, CodeDescriptorRoundtrip) {
  auto restored = ConfigFromCodeDescriptor(code_).value();
  EXPECT_EQ(restored.arch, config_.arch);
  EXPECT_EQ(restored.channel_divisor, config_.channel_divisor);
  EXPECT_EQ(restored.num_classes, config_.num_classes);
  EXPECT_EQ(restored.image_size, config_.image_size);
  EXPECT_EQ(restored.init_seed, config_.init_seed);

  auto rebuilt = BuildModelFromCode(code_).value();
  EXPECT_EQ(rebuilt.ArchitectureFingerprint(),
            model_->ArchitectureFingerprint());
}

TEST_F(SaveServiceTest, CodeDescriptorRejectsUnknownArchitecture) {
  json::Value bad = code_;
  bad.Set("architecture", "AlexNet");
  EXPECT_FALSE(BuildModelFromCode(bad).ok());
}

// --- Baseline ---

TEST_F(SaveServiceTest, BaselineSaveRecoverIsLossless) {
  BaselineSaveService service(backends_);
  auto save = service.SaveModel(MakeRequest(model_.get())).value();
  EXPECT_GT(save.storage_bytes, 0);
  EXPECT_GT(save.tts_seconds, 0.0);

  ModelRecoverer recoverer(backends_);
  auto recovered = recoverer.Recover(save.model_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), model_->ParamsHash());
  EXPECT_TRUE(recovered.checksum_verified);
  EXPECT_TRUE(recovered.environment_matches);
}

TEST_F(SaveServiceTest, BaselineStorageIsIndependentOfBase) {
  BaselineSaveService service(backends_);
  auto first = service.SaveModel(MakeRequest(model_.get())).value();
  ASSERT_TRUE(TrainOnce(model_.get(), 1).ok());
  auto derived =
      service.SaveModel(MakeRequest(model_.get(), first.model_id)).value();
  // BA saves complete snapshots: derived storage ~ initial storage.
  EXPECT_NEAR(static_cast<double>(derived.storage_bytes),
              static_cast<double>(first.storage_bytes),
              0.05 * first.storage_bytes);
}

TEST_F(SaveServiceTest, RecoverUnknownIdFails) {
  ModelRecoverer recoverer(backends_);
  EXPECT_EQ(recoverer.Recover("missing", RecoverOptions{}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(SaveServiceTest, RecoverDetectsTamperedParameters) {
  BaselineSaveService service(backends_);
  auto save = service.SaveModel(MakeRequest(model_.get())).value();

  // Corrupt the stored parameter file.
  auto doc = docs_.Get(kModelsCollection, save.model_id).value();
  const std::string file_id = doc.GetString("params_file").value();
  Bytes params = files_.LoadFile(file_id).value();
  params[params.size() - 1] ^= 0x01;
  // Replace: delete then re-save under a new id, patch the document.
  // (The file store is content-addressed by generated id, so emulate an
  // attacker overwriting stored bytes.)
  files_.Delete(file_id).ok();
  const std::string new_id = files_.SaveFile(params).value();
  doc.Set("params_file", new_id);
  docs_.Delete(kModelsCollection, save.model_id).ok();
  json::Value patched = doc;
  const std::string patched_id =
      docs_.Insert(kModelsCollection, patched).value();

  ModelRecoverer recoverer(backends_);
  RecoverOptions options;
  auto result = recoverer.Recover(patched_id, options);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(SaveServiceTest, RecoverWithoutVerificationSkipsChecks) {
  BaselineSaveService service(backends_);
  auto save = service.SaveModel(MakeRequest(model_.get())).value();
  RecoverOptions options;
  options.verify_checksum = false;
  options.check_environment = false;
  ModelRecoverer recoverer(backends_);
  auto recovered = recoverer.Recover(save.model_id, options).value();
  EXPECT_FALSE(recovered.checksum_verified);
  EXPECT_FALSE(recovered.environment_matches);
  EXPECT_EQ(recovered.breakdown.check_env_seconds, 0.0);
  EXPECT_EQ(recovered.breakdown.verify_seconds, 0.0);
}

// --- Parameter update approach ---

TEST_F(SaveServiceTest, ParamUpdateChainRecoversExactly) {
  ParamUpdateSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  ASSERT_TRUE(TrainOnce(model_.get(), 7).ok());
  const Digest after_first = model_->ParamsHash();
  auto first =
      service.SaveModel(MakeRequest(model_.get(), initial.model_id)).value();

  ASSERT_TRUE(TrainOnce(model_.get(), 8).ok());
  const Digest after_second = model_->ParamsHash();
  auto second =
      service.SaveModel(MakeRequest(model_.get(), first.model_id)).value();

  ModelRecoverer recoverer(backends_);
  EXPECT_EQ(recoverer.Recover(first.model_id, RecoverOptions{})
                .value()
                .model.ParamsHash(),
            after_first);
  EXPECT_EQ(recoverer.Recover(second.model_id, RecoverOptions{})
                .value()
                .model.ParamsHash(),
            after_second);
  EXPECT_EQ(recoverer.BaseChainLength(second.model_id).value(), 2u);
}

TEST_F(SaveServiceTest, ParamUpdateSavesOnlyChangedLayers) {
  models::ApplyPartialUpdateFreeze(model_.get());
  ParamUpdateSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  ASSERT_TRUE(TrainOnce(model_.get(), 9).ok());
  auto derived =
      service.SaveModel(MakeRequest(model_.get(), initial.model_id)).value();

  const auto& stats = service.last_diff_stats();
  EXPECT_GT(stats.total_layers, 50u);
  // Only the classifier head changed.
  EXPECT_LE(stats.changed_layers, 2u);
  EXPECT_GE(stats.changed_layers, 1u);
  EXPECT_LT(stats.merkle_comparisons, stats.total_layers);
  // Partial update storage is a small fraction of the full snapshot.
  EXPECT_LT(derived.storage_bytes, initial.storage_bytes / 3);

  ModelRecoverer recoverer(backends_);
  auto recovered =
      recoverer.Recover(derived.model_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), model_->ParamsHash());
}

TEST_F(SaveServiceTest, ParamUpdateFullUpdateStoresEverything) {
  ParamUpdateSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  ASSERT_TRUE(TrainOnce(model_.get(), 10).ok());
  auto derived =
      service.SaveModel(MakeRequest(model_.get(), initial.model_id)).value();
  // Fully updated version: the update is roughly a full snapshot.
  EXPECT_GT(derived.storage_bytes, initial.storage_bytes * 7 / 10);
}

TEST_F(SaveServiceTest, ParamUpdateRequiresExistingBase) {
  ParamUpdateSaveService service(backends_);
  auto result = service.SaveModel(MakeRequest(model_.get(), "ghost-id"));
  EXPECT_FALSE(result.ok());
}

// --- Provenance approach ---

TEST_F(SaveServiceTest, ProvenanceRecoverReproducesTraining) {
  ProvenanceSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  auto provenance = TrainOnce(model_.get(), 11);
  ASSERT_TRUE(provenance.ok());
  const Digest trained_hash = model_->ParamsHash();

  SaveRequest request = MakeRequest(model_.get(), initial.model_id);
  request.provenance = &provenance.value();
  auto derived = service.SaveModel(request).value();

  ModelRecoverer recoverer(backends_);
  auto recovered =
      recoverer.Recover(derived.model_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), trained_hash);
  EXPECT_TRUE(recovered.checksum_verified);
}

TEST_F(SaveServiceTest, ProvenanceStorageIsDatasetDominated) {
  ProvenanceSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  auto provenance = TrainOnce(model_.get(), 12);
  ASSERT_TRUE(provenance.ok());
  SaveRequest request = MakeRequest(model_.get(), initial.model_id);
  request.provenance = &provenance.value();
  auto derived = service.SaveModel(request).value();

  // Storage tracks the archived dataset, not the model parameters.
  const size_t dataset_bytes = dataset_->TotalByteSize();
  EXPECT_LT(static_cast<size_t>(derived.storage_bytes), 2 * dataset_bytes);
  EXPECT_LT(derived.storage_bytes, initial.storage_bytes);
}

TEST_F(SaveServiceTest, ProvenanceRequiresProvenanceForDerived) {
  ProvenanceSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  auto result = service.SaveModel(MakeRequest(model_.get(),
                                              initial.model_id));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SaveServiceTest, ProvenanceChainRecoversTransitively) {
  ProvenanceSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  std::string base_id = initial.model_id;
  Digest final_hash{};
  for (uint64_t round = 0; round < 3; ++round) {
    auto provenance = TrainOnce(model_.get(), 20 + round);
    ASSERT_TRUE(provenance.ok());
    final_hash = model_->ParamsHash();
    SaveRequest request = MakeRequest(model_.get(), base_id);
    request.provenance = &provenance.value();
    base_id = service.SaveModel(request).value().model_id;
  }

  ModelRecoverer recoverer(backends_);
  EXPECT_EQ(recoverer.BaseChainLength(base_id).value(), 3u);
  auto recovered = recoverer.Recover(base_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), final_hash);
}

TEST_F(SaveServiceTest, ExternalDatasetManagerStoresReferenceOnly) {
  ProvenanceOptions options;
  options.external_dataset_manager = true;
  ProvenanceSaveService service(backends_, options);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  auto provenance = TrainOnce(model_.get(), 30);
  ASSERT_TRUE(provenance.ok());
  const Digest trained_hash = model_->ParamsHash();
  SaveRequest request = MakeRequest(model_.get(), initial.model_id);
  request.provenance = &provenance.value();
  auto derived = service.SaveModel(request).value();

  // Without the archive, derived storage shrinks to metadata: the stored
  // provenance document references the dataset by content hash only.
  auto model_doc = docs_.Get(kModelsCollection, derived.model_id).value();
  auto prov_doc =
      docs_.Get(kProvenanceCollection,
                model_doc.GetString("provenance_doc").value())
          .value();
  EXPECT_EQ(prov_doc.FindMember("dataset_file"), nullptr);
  EXPECT_NE(prov_doc.FindMember("dataset_ref"), nullptr);

  // Recovery fails without a resolver ...
  ModelRecoverer recoverer(backends_);
  EXPECT_EQ(
      recoverer.Recover(derived.model_id, RecoverOptions{}).status().code(),
      StatusCode::kFailedPrecondition);

  // ... and succeeds with one.
  class Resolver : public DatasetResolver {
   public:
    Result<std::unique_ptr<data::Dataset>> Resolve(
        const std::string& name, const std::string&) override {
      if (name != "Coco-outdoor-512") {
        return Status::NotFound("unknown dataset " + name);
      }
      return std::unique_ptr<data::Dataset>(
          std::make_unique<data::SyntheticImageDataset>(
              data::PaperDatasetId::kCocoOutdoor512, 4096));
    }
  };
  Resolver resolver;
  recoverer.set_dataset_resolver(&resolver);
  auto recovered =
      recoverer.Recover(derived.model_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), trained_hash);
}

// --- Adaptive approach ---

TEST_F(SaveServiceTest, AdaptivePicksParamUpdateForPartialUpdates) {
  models::ApplyPartialUpdateFreeze(model_.get());
  AdaptiveSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  auto provenance = TrainOnce(model_.get(), 40);
  ASSERT_TRUE(provenance.ok());
  SaveRequest request = MakeRequest(model_.get(), initial.model_id);
  request.provenance = &provenance.value();
  service.SaveModel(request).value();
  // The head-only update is far smaller than the dataset archive.
  EXPECT_EQ(service.last_choice(), kApproachParamUpdate);
  EXPECT_LT(service.last_estimates().param_update,
            service.last_estimates().provenance);
}

TEST_F(SaveServiceTest, AdaptivePicksProvenanceForSmallDatasets) {
  AdaptiveSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();

  // Fully updated model + tiny dataset: provenance is cheapest.
  data::SyntheticImageDataset tiny(data::PaperDatasetId::kCocoOutdoor512,
                                   1 << 20);
  TrainConfig config = TinyTrainConfig();
  ImageTrainService trainer(&tiny, config);
  auto provenance = trainer.CaptureProvenance().value();
  ASSERT_TRUE(trainer.Train(model_.get(), true, 0).ok());

  SaveRequest request = MakeRequest(model_.get(), initial.model_id);
  request.provenance = &provenance;
  service.SaveModel(request).value();
  EXPECT_EQ(service.last_choice(), kApproachProvenance);
}

TEST_F(SaveServiceTest, AdaptiveFallsBackWithoutProvenance) {
  AdaptiveSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  ASSERT_TRUE(TrainOnce(model_.get(), 50).ok());
  auto derived =
      service.SaveModel(MakeRequest(model_.get(), initial.model_id)).value();
  EXPECT_NE(service.last_choice(), kApproachProvenance);

  ModelRecoverer recoverer(backends_);
  auto recovered =
      recoverer.Recover(derived.model_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), model_->ParamsHash());
}

TEST_F(SaveServiceTest, AdaptiveMixedChainRecovers) {
  // Build a chain whose links were chosen by different approaches and
  // recover the head — the recoverer must dispatch per link.
  AdaptiveSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  std::string base_id = initial.model_id;

  // Link 1: partial update (PUA expected).
  models::ApplyPartialUpdateFreeze(model_.get());
  auto prov1 = TrainOnce(model_.get(), 60);
  ASSERT_TRUE(prov1.ok());
  SaveRequest r1 = MakeRequest(model_.get(), base_id);
  r1.provenance = &prov1.value();
  base_id = service.SaveModel(r1).value().model_id;
  EXPECT_EQ(service.last_choice(), kApproachParamUpdate);

  // Link 2: full update with tiny dataset (MPA expected).
  model_->SetTrainableAll(true);
  data::SyntheticImageDataset tiny(data::PaperDatasetId::kCocoFood512,
                                   1 << 20);
  ImageTrainService trainer(&tiny, TinyTrainConfig());
  auto prov2 = trainer.CaptureProvenance().value();
  ASSERT_TRUE(trainer.Train(model_.get(), true, 0).ok());
  SaveRequest r2 = MakeRequest(model_.get(), base_id);
  r2.provenance = &prov2;
  base_id = service.SaveModel(r2).value().model_id;
  EXPECT_EQ(service.last_choice(), kApproachProvenance);

  ModelRecoverer recoverer(backends_);
  auto recovered = recoverer.Recover(base_id, RecoverOptions{}).value();
  EXPECT_EQ(recovered.model.ParamsHash(), model_->ParamsHash());
  EXPECT_EQ(recoverer.BaseChainLength(base_id).value(), 2u);
}

// --- Evaluation ---

TEST_F(SaveServiceTest, RecoveredModelEvaluatesIdentically) {
  BaselineSaveService service(backends_);
  auto save = service.SaveModel(MakeRequest(model_.get())).value();
  ModelRecoverer recoverer(backends_);
  auto recovered = recoverer.Recover(save.model_id, RecoverOptions{}).value();

  data::DataLoaderOptions options;
  options.batch_size = 8;
  options.image_size = config_.image_size;
  options.num_classes = config_.num_classes;
  options.shuffle = false;
  data::DataLoader loader(dataset_.get(), options);

  nn::ExecutionContext ctx1 = nn::ExecutionContext::Deterministic(1);
  auto original =
      EvaluateModel(model_.get(), loader, &ctx1, /*max_batches=*/4).value();
  nn::ExecutionContext ctx2 = nn::ExecutionContext::Deterministic(1);
  auto replica =
      EvaluateModel(&recovered.model, loader, &ctx2, /*max_batches=*/4)
          .value();
  EXPECT_EQ(original.mean_loss, replica.mean_loss);
  EXPECT_EQ(original.accuracy, replica.accuracy);
  EXPECT_EQ(original.sample_count, replica.sample_count);
  EXPECT_EQ(original.sample_count, 32u);
  EXPECT_GT(original.mean_loss, 0.0);
  // The context's training flag is restored afterwards.
  EXPECT_TRUE(ctx1.training());
}

// --- Failure injection ---

TEST_F(SaveServiceTest, RecoverFailsWhenUpdateFileMissing) {
  ParamUpdateSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  ASSERT_TRUE(TrainOnce(model_.get(), 70).ok());
  auto derived =
      service.SaveModel(MakeRequest(model_.get(), initial.model_id)).value();

  auto doc = docs_.Get(kModelsCollection, derived.model_id).value();
  ASSERT_TRUE(
      files_.Delete(doc.GetString("update_file").value()).ok());

  ModelRecoverer recoverer(backends_);
  EXPECT_EQ(
      recoverer.Recover(derived.model_id, RecoverOptions{}).status().code(),
      StatusCode::kNotFound);
}

TEST_F(SaveServiceTest, SaveDerivedFailsWhenBaseMerkleMissing) {
  ParamUpdateSaveService service(backends_);
  auto initial = service.SaveModel(MakeRequest(model_.get())).value();
  auto doc = docs_.Get(kModelsCollection, initial.model_id).value();
  ASSERT_TRUE(
      files_.Delete(doc.GetString("merkle_file").value()).ok());

  ASSERT_TRUE(TrainOnce(model_.get(), 71).ok());
  EXPECT_FALSE(
      service.SaveModel(MakeRequest(model_.get(), initial.model_id)).ok());
}

TEST_F(SaveServiceTest, EnvironmentMismatchIsReportedWithDiffs) {
  // Save under a (fictitious) different environment; recovery on this host
  // must flag the mismatch and name the differing fields.
  env::EnvironmentInfo other = environment_;
  other.os_release = "5.0.0-other-machine";
  other.libraries["mmlib.nn"] = "0.1";
  BaselineSaveService service(backends_);
  SaveRequest request = MakeRequest(model_.get());
  request.environment = &other;
  auto save = service.SaveModel(request).value();

  ModelRecoverer recoverer(backends_);
  auto recovered = recoverer.Recover(save.model_id, RecoverOptions{}).value();
  EXPECT_FALSE(recovered.environment_matches);
  ASSERT_EQ(recovered.environment_diffs.size(), 2u);
  EXPECT_NE(recovered.environment_diffs[0].find("os_release"),
            std::string::npos);
  // The model itself still recovers losslessly.
  EXPECT_TRUE(recovered.checksum_verified);
}

TEST_F(SaveServiceTest, BaseChainLengthWalksDeepChains) {
  // Synthetic metadata-only chain (no payloads needed for chain walking).
  std::string prev;
  for (int i = 0; i < 100; ++i) {
    json::Value link = json::Value::MakeObject();
    link.Set("approach", std::string(kApproachParamUpdate));
    if (!prev.empty()) {
      link.Set("base_model", prev);
    }
    prev = docs_.Insert(kModelsCollection, link).value();
  }
  ModelRecoverer recoverer(backends_);
  EXPECT_EQ(recoverer.BaseChainLength(prev).value(), 99u);
  // A dangling base reference is reported, not ignored.
  json::Value dangling = json::Value::MakeObject();
  dangling.Set("approach", std::string(kApproachParamUpdate));
  dangling.Set("base_model", "no-such-model");
  const std::string dangling_id =
      docs_.Insert(kModelsCollection, dangling).value();
  EXPECT_EQ(recoverer.BaseChainLength(dangling_id).status().code(),
            StatusCode::kNotFound);
}

// --- Breakdown attribution (Figure 12 plumbing) ---

TEST_F(SaveServiceTest, RecoverBreakdownCoversAllSteps) {
  BaselineSaveService service(backends_);
  auto save = service.SaveModel(MakeRequest(model_.get())).value();
  ModelRecoverer recoverer(backends_);
  auto recovered = recoverer.Recover(save.model_id, RecoverOptions{}).value();
  const RecoverBreakdown& b = recovered.breakdown;
  EXPECT_GT(b.load_seconds, 0.0);
  EXPECT_GT(b.recover_seconds, 0.0);
  EXPECT_GT(b.check_env_seconds, 0.0);
  EXPECT_GT(b.verify_seconds, 0.0);
  EXPECT_NEAR(b.TotalSeconds(),
              b.load_seconds + b.recover_seconds + b.check_env_seconds +
                  b.verify_seconds,
              1e-12);
}

}  // namespace
}  // namespace mmlib::core
