#include "util/status.h"

namespace mmlib {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string result(StatusCodeName(code_));
  result += ": ";
  result += message_;
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) {
    return *this;
  }
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mmlib
