#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>

namespace mmlib::util {

namespace {

/// Set while a pool worker (or a caller inside ParallelFor) is executing
/// chunk bodies; nested ParallelFor calls detect it and run inline instead
/// of deadlocking on the job slot.
thread_local bool t_inside_parallel_region = false;

}  // namespace

/// One ParallelFor invocation. Chunk claiming uses an atomic ticket, which
/// only decides *which thread* runs a chunk — chunk boundaries and all
/// outputs are scheduling-independent, so the ticket does not affect
/// results.
struct ThreadPool::Job {
  int64_t total = 0;
  int64_t grain = 1;
  size_t num_chunks = 0;
  const ChunkFn* fn = nullptr;
  std::atomic<size_t> next_chunk{0};
  std::atomic<size_t> remaining{0};
  // First-failing-chunk exception, kept by lowest chunk index so the caller
  // observes a deterministic error regardless of scheduling.
  std::mutex error_mutex;
  size_t error_chunk = std::numeric_limits<size_t>::max();
  std::exception_ptr error;
};

ThreadPool::ThreadPool(size_t thread_count) {
  if (thread_count == 0) {
    thread_count = 1;
  }
  workers_.reserve(thread_count - 1);
  for (size_t i = 0; i + 1 < thread_count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::RunChunks(Job* job) {
  const bool was_inside = t_inside_parallel_region;
  t_inside_parallel_region = true;
  while (true) {
    const size_t chunk = job->next_chunk.fetch_add(1);
    if (chunk >= job->num_chunks) {
      break;
    }
    const int64_t begin = static_cast<int64_t>(chunk) * job->grain;
    const int64_t end = std::min(job->total, begin + job->grain);
    try {
      (*job->fn)(begin, end, chunk);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mutex);
      if (chunk < job->error_chunk) {
        job->error_chunk = chunk;
        job->error = std::current_exception();
      }
    }
    job->remaining.fetch_sub(1);
  }
  t_inside_parallel_region = was_inside;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ ||
             (job_ != nullptr && job_generation_ != seen_generation);
    });
    if (shutdown_) {
      return;
    }
    seen_generation = job_generation_;
    // Hold a reference so the Job outlives this worker's participation even
    // if the caller finishes waiting first.
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    RunChunks(job.get());
    {
      std::lock_guard<std::mutex> done_lock(mutex_);
    }
    done_cv_.notify_all();
    lock.lock();
  }
}

void ThreadPool::ParallelFor(int64_t total, int64_t grain, const ChunkFn& fn) {
  if (total <= 0) {
    return;
  }
  if (grain <= 0) {
    grain = 1;
  }
  const size_t num_chunks = static_cast<size_t>(NumChunks(total, grain));
  // Serial path: no workers, a single chunk, or a nested call from inside a
  // chunk body. Chunk decomposition is identical to the parallel path, so
  // results are too.
  if (workers_.empty() || num_chunks == 1 || t_inside_parallel_region) {
    Job job;
    job.total = total;
    job.grain = grain;
    job.num_chunks = num_chunks;
    job.fn = &fn;
    job.remaining.store(num_chunks);
    RunChunks(&job);
    if (job.error) {
      std::rethrow_exception(job.error);
    }
    return;
  }

  // One ParallelFor at a time; later external callers queue up here.
  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->total = total;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  job->remaining.store(num_chunks);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_generation_;
  }
  work_cv_.notify_all();
  RunChunks(job.get());
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job->remaining.load() == 0; });
    job_.reset();
  }
  if (job->error) {
    std::rethrow_exception(job->error);
  }
}

ThreadPool* ThreadPool::Global() {
  // Leaked deliberately: worker threads must not be joined during static
  // destruction, and the pointer stays reachable (not a leak to LSan).
  static ThreadPool* pool = new ThreadPool(DefaultThreadCount());
  return pool;
}

size_t ThreadPool::DefaultThreadCount() {
  size_t hardware = std::thread::hardware_concurrency();
  if (hardware == 0) {
    hardware = 1;
  }
  return ParseThreadCount(std::getenv("MMLIB_THREADS"), hardware);
}

size_t ThreadPool::ParseThreadCount(const char* value, size_t fallback) {
  constexpr size_t kMaxThreads = 1024;
  if (fallback == 0) {
    fallback = 1;
  }
  if (fallback > kMaxThreads) {
    fallback = kMaxThreads;
  }
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  size_t parsed = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      return fallback;
    }
    parsed = parsed * 10 + static_cast<size_t>(*p - '0');
    if (parsed > kMaxThreads) {
      return kMaxThreads;
    }
  }
  return parsed == 0 ? 1 : parsed;
}

void ParallelFor(ThreadPool* pool, int64_t total, int64_t grain,
                 const ThreadPool::ChunkFn& fn) {
  if (pool == nullptr) {
    pool = ThreadPool::Global();
  }
  pool->ParallelFor(total, grain, fn);
}

}  // namespace mmlib::util
