#include "nn/adam.h"

#include <cmath>
#include <cstdio>

namespace mmlib::nn {

AdamOptimizer::AdamOptimizer(Model* model, AdamOptions options)
    : model_(model), options_(options) {
  RebuildSlots();
}

void AdamOptimizer::RebuildSlots() {
  slots_.clear();
  for (size_t i = 0; i < model_->node_count(); ++i) {
    Layer* layer = model_->layer(i);
    for (size_t p = 0; p < layer->params().size(); ++p) {
      const Param& param = layer->params()[p];
      if (param.trainable && !param.is_buffer) {
        slots_.push_back(Slot{i, p, Tensor(param.value.shape()),
                              Tensor(param.value.shape())});
      }
    }
  }
}

void AdamOptimizer::Step() {
  ++step_count_;
  const float b1 = options_.beta1;
  const float b2 = options_.beta2;
  // Bias correction in fixed order; std::pow on integers is deterministic.
  const float correction1 =
      1.0f - std::pow(b1, static_cast<float>(step_count_));
  const float correction2 =
      1.0f - std::pow(b2, static_cast<float>(step_count_));

  for (Slot& slot : slots_) {
    Param& param = model_->layer(slot.node_index)->params()[slot.param_index];
    if (!param.trainable) {
      continue;
    }
    float* value = param.value.data();
    const float* grad = param.grad.data();
    float* m = slot.first_moment.data();
    float* v = slot.second_moment.data();
    const int64_t n = param.value.numel();
    for (int64_t i = 0; i < n; ++i) {
      const float g = grad[i] + options_.weight_decay * value[i];
      m[i] = b1 * m[i] + (1.0f - b1) * g;
      v[i] = b2 * v[i] + (1.0f - b2) * g * g;
      const float m_hat = m[i] / correction1;
      const float v_hat = v[i] / correction2;
      value[i] -=
          options_.learning_rate * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

Bytes AdamOptimizer::SerializeState() const {
  BytesWriter writer;
  writer.WriteF32(options_.learning_rate);
  writer.WriteF32(options_.beta1);
  writer.WriteF32(options_.beta2);
  writer.WriteF32(options_.epsilon);
  writer.WriteF32(options_.weight_decay);
  writer.WriteI64(step_count_);
  writer.WriteU64(slots_.size());
  for (const Slot& slot : slots_) {
    const Layer* layer = model_->layer(slot.node_index);
    writer.WriteString(layer->name());
    writer.WriteString(layer->params()[slot.param_index].name);
    slot.first_moment.SerializeTo(&writer);
    slot.second_moment.SerializeTo(&writer);
  }
  return writer.TakeBytes();
}

Status AdamOptimizer::LoadState(const Bytes& data) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(options_.learning_rate, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(options_.beta1, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(options_.beta2, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(options_.epsilon, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(options_.weight_decay, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(step_count_, reader.ReadI64());
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count != slots_.size()) {
    return Status::Corruption("Adam state slot count mismatch: " +
                              std::to_string(count) + " vs " +
                              std::to_string(slots_.size()));
  }
  for (Slot& slot : slots_) {
    const Layer* layer = model_->layer(slot.node_index);
    MMLIB_ASSIGN_OR_RETURN(std::string layer_name, reader.ReadString());
    MMLIB_ASSIGN_OR_RETURN(std::string param_name, reader.ReadString());
    if (layer_name != layer->name() ||
        param_name != layer->params()[slot.param_index].name) {
      return Status::Corruption("Adam state does not match model: " +
                                layer_name + "." + param_name);
    }
    MMLIB_ASSIGN_OR_RETURN(Tensor m, Tensor::Deserialize(&reader));
    MMLIB_ASSIGN_OR_RETURN(Tensor v, Tensor::Deserialize(&reader));
    if (m.shape() != slot.first_moment.shape() ||
        v.shape() != slot.second_moment.shape()) {
      return Status::Corruption("Adam moment shape mismatch for " +
                                layer_name + "." + param_name);
    }
    slot.first_moment = std::move(m);
    slot.second_moment = std::move(v);
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after Adam state");
  }
  return Status::OK();
}

std::string AdamOptimizer::DescribeConfig() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "Adam(lr=%g, beta1=%g, beta2=%g, eps=%g, weight_decay=%g)",
                options_.learning_rate, options_.beta1, options_.beta2,
                options_.epsilon, options_.weight_decay);
  return buffer;
}

}  // namespace mmlib::nn
