file(REMOVE_RECURSE
  "libmmlib.a"
)
