#include "kernels/linear_plan.h"

#include <algorithm>

#include "kernels/gemm.h"

namespace mmlib::kernels {

namespace {

/// Below this many multiply-adds, the direct loop wins over packing.
constexpr int64_t kMinGemmWork = 16384;

/// Chunk cap over column tiles; a constant so chunk boundaries (and the
/// implicit ownership of output columns) never depend on the pool size.
constexpr int64_t kMaxChunks = 64;

}  // namespace

LinearPlan::LinearPlan(int64_t batch, int64_t in_features,
                       int64_t out_features)
    : batch_(batch), in_features_(in_features), out_features_(out_features) {
  if (batch * in_features * out_features < kMinGemmWork) {
    algo_ = LinearAlgo::kDirect;
    return;
  }
  algo_ = LinearAlgo::kGemm;
  nc_ = std::min<int64_t>(256, CeilDiv(out_features, kGemmNR) * kGemmNR);
  kc_forward_ = std::min<int64_t>(kGemmKC, in_features);
  // A = packed activations (batch x in); keep the smaller operand resident.
  rows_outer_ = batch > nc_;
}

void LinearPlan::Forward(const float* x, const float* weight,
                         const float* bias, float* y,
                         util::ThreadPool* pool) const {
  const int64_t b = batch_;
  const int64_t in = in_features_;
  const int64_t out = out_features_;

  // Call-level packs, shared read-only by all chunks:
  //   A = x strips (batch rows, k dim = in)
  //   B = W^T panels (k dim = in, columns = out features).
  const int64_t a_floats = PackedStripFloats(b, in);
  const int64_t b_floats = PackedPanelFloats(in, out);
  util::ScratchPool::Lease lease =
      scratch_.Acquire(static_cast<size_t>(a_floats + b_floats));
  float* a_pack = lease.data();
  float* b_pack = a_pack + a_floats;
  PackStrips(x, b, in, 0, in, a_pack);
  PackPanelsTransposed(weight, out, in, in, 0, out, b_pack);

  const int64_t tiles = CeilDiv(out, nc_);
  const int64_t grain = util::GrainForMaxChunks(tiles, kMaxChunks);
  util::ParallelFor(
      pool, tiles, grain,
      [&](int64_t begin, int64_t end, size_t /*chunk_index*/) {
        for (int64_t tile = begin; tile < end; ++tile) {
          const int64_t col_begin = tile * nc_;
          const int64_t ncols = std::min(nc_, out - col_begin);
          GemmPacked(a_pack, b_pack + (col_begin / kGemmNR) * in * kGemmNR,
                     b, ncols, in, kc_forward_, y + col_begin, out,
                     /*accumulate=*/false, rows_outer_, bias + col_begin);
        }
      });
}

void LinearPlan::Backward(const float* x, const float* weight,
                          const float* grad_output, float* grad_input,
                          float* grad_weight, float* grad_bias,
                          util::ThreadPool* pool) const {
  const int64_t b = batch_;
  const int64_t in = in_features_;
  const int64_t out = out_features_;

  // Call-level packs:
  //   A1 = gout strips (batch rows, k = out)     for grad_input
  //   B1 = W panels (k = out, columns = in)      for grad_input
  //   A2 = gout^T strips (out rows, k = batch)   for grad_weight
  //   B2 = x panels (k = batch, columns = in)    for grad_weight
  const int64_t a1_floats = PackedStripFloats(b, out);
  const int64_t b1_floats = PackedPanelFloats(out, in);
  const int64_t a2_floats = PackedStripFloats(out, b);
  const int64_t b2_floats = PackedPanelFloats(b, in);
  util::ScratchPool::Lease lease = scratch_.Acquire(
      static_cast<size_t>(a1_floats + b1_floats + a2_floats + b2_floats));
  float* a1 = lease.data();
  float* b1 = a1 + a1_floats;
  float* a2 = b1 + b1_floats;
  float* b2 = a2 + a2_floats;
  PackStrips(grad_output, b, out, 0, out, a1);
  PackPanels(weight, out, in, 0, in, b1);
  PackStripsTransposed(grad_output, b, out, out, a2);
  PackPanels(x, b, in, 0, in, b2);

  // Both gradients tile over the in-feature dimension: every output column
  // is owned by exactly one chunk and its batch reduction runs inside the
  // GEMM in fixed batch order, so no scratch reduction is needed and the
  // result is bit-identical at any pool size.
  const int64_t tiles = CeilDiv(in, nc_);
  const int64_t grain = util::GrainForMaxChunks(tiles, kMaxChunks);
  const int64_t kc_out = std::min<int64_t>(kGemmKC, out);
  const int64_t kc_b = std::min<int64_t>(kGemmKC, b);
  util::ParallelFor(
      pool, tiles, grain,
      [&](int64_t begin, int64_t end, size_t /*chunk_index*/) {
        for (int64_t tile = begin; tile < end; ++tile) {
          const int64_t col_begin = tile * nc_;
          const int64_t ncols = std::min(nc_, in - col_begin);
          GemmPacked(a1, b1 + (col_begin / kGemmNR) * out * kGemmNR, b,
                     ncols, out, kc_out, grad_input + col_begin, in,
                     /*accumulate=*/false, rows_outer_, /*bias=*/nullptr);
          GemmPacked(a2, b2 + (col_begin / kGemmNR) * b * kGemmNR, out,
                     ncols, b, kc_b, grad_weight + col_begin, in,
                     /*accumulate=*/true, /*rows_outer=*/out > ncols,
                     /*bias=*/nullptr);
        }
      });

  // Bias gradient: small, serial, fixed batch order.
  for (int64_t o = 0; o < out; ++o) {
    float sum = 0.0f;
    for (int64_t s = 0; s < b; ++s) {
      sum += grad_output[s * out + o];
    }
    grad_bias[o] += sum;
  }
}

}  // namespace mmlib::kernels
