/// Thread-pool scaling microbenchmark: sweeps MMLIB-style pool sizes over
/// the parallelized pipelines (conv/linear forward and backward through the
/// kernel-plan layer, Merkle-leaf hashing, chunked codec encode), verifies
/// that every result is bit-identical to the 1-thread run (the
/// deterministic-chunking contract), and writes the measurements to
/// BENCH_parallel.json.
///
/// `--smoke` runs one rep per configuration and a smaller codec payload —
/// no useful timings, but the full bit-identity sweep — for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "compress/chunked.h"
#include "json/json.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "util/clock.h"
#include "util/thread_pool.h"

using namespace mmlib;

namespace {

constexpr size_t kThreadSweep[] = {1, 2, 4, 8};

bool g_smoke = false;

struct Measurement {
  size_t threads = 0;
  double seconds_per_op = 0.0;
  bool bit_identical = false;
};

struct Section {
  std::string name;
  std::vector<Measurement> results;
};

/// Median-of-runs timing for one operation.
template <typename Fn>
double TimeOp(int reps, const Fn& fn) {
  if (g_smoke) {
    reps = 1;
  }
  std::vector<double> samples;
  samples.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

bool SameBits(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

Section BenchConvForward() {
  Rng rng(1);
  nn::Conv2d conv("bench", 8, 16, 3, 1, 1, 1, &rng);
  Rng input_rng(2);
  const Tensor input =
      Tensor::Gaussian(Shape{8, 8, 32, 32}, 1.0f, &input_rng);

  Section section{"conv_forward", {}};
  Tensor reference;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(3);
    ctx.set_pool(&pool);
    Tensor output;
    const double seconds = TimeOp(5, [&] {
      output = conv.Forward({&input}, &ctx).value();
    });
    if (threads == 1) {
      reference = output;
    }
    section.results.push_back({threads, seconds, SameBits(output, reference)});
  }
  return section;
}

Section BenchConvBackward() {
  Rng rng(11);
  nn::Conv2d conv("bench", 8, 16, 3, 1, 1, 1, &rng);
  Rng input_rng(12);
  const Tensor input =
      Tensor::Gaussian(Shape{8, 8, 32, 32}, 1.0f, &input_rng);
  Rng gout_rng(13);
  const Tensor gout =
      Tensor::Gaussian(Shape{8, 16, 32, 32}, 1.0f, &gout_rng);

  Section section{"conv_backward", {}};
  Tensor ref_gin;
  Tensor ref_gw;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(3);
    ctx.set_pool(&pool);
    (void)conv.Forward({&input}, &ctx).value();
    Tensor grad_input;
    const double seconds = TimeOp(5, [&] {
      conv.ZeroGrad();
      grad_input = std::move(conv.Backward(gout, &ctx).value()[0]);
    });
    const Tensor& grad_weight = conv.params()[0].grad;
    if (threads == 1) {
      ref_gin = grad_input;
      ref_gw = grad_weight;
    }
    section.results.push_back(
        {threads, seconds,
         SameBits(grad_input, ref_gin) && SameBits(grad_weight, ref_gw)});
  }
  return section;
}

Section BenchLinearForward() {
  Rng rng(21);
  nn::Linear fc("bench", 512, 512, &rng);
  Rng input_rng(22);
  const Tensor input = Tensor::Gaussian(Shape{64, 512}, 1.0f, &input_rng);

  Section section{"linear_forward", {}};
  Tensor reference;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(3);
    ctx.set_pool(&pool);
    Tensor output;
    const double seconds = TimeOp(10, [&] {
      output = fc.Forward({&input}, &ctx).value();
    });
    if (threads == 1) {
      reference = output;
    }
    section.results.push_back({threads, seconds, SameBits(output, reference)});
  }
  return section;
}

Section BenchLinearBackward() {
  Rng rng(31);
  nn::Linear fc("bench", 512, 512, &rng);
  Rng input_rng(32);
  const Tensor input = Tensor::Gaussian(Shape{64, 512}, 1.0f, &input_rng);
  Rng gout_rng(33);
  const Tensor gout = Tensor::Gaussian(Shape{64, 512}, 1.0f, &gout_rng);

  Section section{"linear_backward", {}};
  Tensor ref_gin;
  Tensor ref_gw;
  Tensor ref_gb;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(3);
    ctx.set_pool(&pool);
    (void)fc.Forward({&input}, &ctx).value();
    Tensor grad_input;
    const double seconds = TimeOp(10, [&] {
      fc.ZeroGrad();
      grad_input = std::move(fc.Backward(gout, &ctx).value()[0]);
    });
    const Tensor& grad_weight = fc.params()[0].grad;
    const Tensor& grad_bias = fc.params()[1].grad;
    if (threads == 1) {
      ref_gin = grad_input;
      ref_gw = grad_weight;
      ref_gb = grad_bias;
    }
    section.results.push_back({threads, seconds,
                               SameBits(grad_input, ref_gin) &&
                                   SameBits(grad_weight, ref_gw) &&
                                   SameBits(grad_bias, ref_gb)});
  }
  return section;
}

Section BenchMerkleBuild() {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 4;
  config.image_size = 56;
  config.num_classes = 250;
  config.init_seed = 4;
  nn::Model model = models::BuildModel(config).value();

  Section section{"merkle_build", {}};
  Digest reference;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    Digest root;
    const double seconds = TimeOp(5, [&] {
      root = model.BuildMerkleTree(&pool).value().root();
    });
    if (threads == 1) {
      reference = root;
    }
    section.results.push_back({threads, seconds, root == reference});
  }
  return section;
}

Section BenchCodecEncode() {
  // Compressible payload shaped like a serialized parameter snapshot.
  Bytes payload((g_smoke ? 1 : 4) * 1024 * 1024);
  Rng rng(5);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(rng.NextBelow(29));
  }
  constexpr size_t kChunkSize = 256 * 1024;

  Section section{"codec_encode", {}};
  Bytes reference;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    Bytes frame;
    const double seconds = TimeOp(3, [&] {
      frame =
          ChunkedFrame(payload, CodecKind::kLz77, kChunkSize, &pool).value();
    });
    if (threads == 1) {
      reference = frame;
    }
    section.results.push_back({threads, seconds, frame == reference});
  }
  return section;
}

json::Value SectionToJson(const Section& section) {
  json::Value results = json::Value::MakeArray();
  const double base = section.results.front().seconds_per_op;
  for (const Measurement& m : section.results) {
    json::Value row = json::Value::MakeObject();
    row.Set("threads", static_cast<int64_t>(m.threads));
    row.Set("seconds_per_op", m.seconds_per_op);
    row.Set("speedup", m.seconds_per_op > 0 ? base / m.seconds_per_op : 0.0);
    row.Set("bit_identical", m.bit_identical);
    results.Append(std::move(row));
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("name", section.name);
  doc.Set("results", std::move(results));
  return doc;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      g_smoke = true;
    }
  }

  bench::PrintHeader(
      "micro_parallel", "Thread-pool scaling of the parallel pipelines",
      "Deterministic chunking: chunk boundaries depend only on the problem\n"
      "size, so every pool size must produce bit-identical results; the\n"
      "sweep verifies that while measuring throughput (DESIGN.md\n"
      "\"Threading model\" and \"Kernel plan layer\").");

  const size_t hardware_threads = util::ThreadPool::DefaultThreadCount();
  std::printf("hardware/default threads: %zu%s\n\n", hardware_threads,
              g_smoke ? " (smoke mode: 1 rep, timings not meaningful)" : "");

  const std::vector<Section> sections = {
      BenchConvForward(),    BenchConvBackward(), BenchLinearForward(),
      BenchLinearBackward(), BenchMerkleBuild(),  BenchCodecEncode()};

  TablePrinter table(
      {"section", "threads", "sec/op", "speedup", "bit-identical"});
  json::Value section_array = json::Value::MakeArray();
  for (const Section& section : sections) {
    const double base = section.results.front().seconds_per_op;
    for (const Measurement& m : section.results) {
      char sec_buf[32];
      char speedup_buf[32];
      std::snprintf(sec_buf, sizeof(sec_buf), "%.6f", m.seconds_per_op);
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx",
                    m.seconds_per_op > 0 ? base / m.seconds_per_op : 0.0);
      table.AddRow({section.name, std::to_string(m.threads), sec_buf,
                    speedup_buf, m.bit_identical ? "yes" : "NO"});
    }
    section_array.Append(SectionToJson(section));
  }
  table.Print(std::cout);

  bool all_identical = true;
  for (const Section& section : sections) {
    for (const Measurement& m : section.results) {
      all_identical = all_identical && m.bit_identical;
    }
  }

  if (!g_smoke) {
    json::Value doc = json::Value::MakeObject();
    doc.Set("bench", "micro_parallel");
    // Largest pool in the sweep; per-row thread counts live in `sections`.
    bench::SetHostMetadata(&doc, hardware_threads);
    doc.Set("hardware_threads", static_cast<int64_t>(hardware_threads));
    doc.Set("all_bit_identical", all_identical);
    doc.Set("sections", std::move(section_array));
    const std::string json_text = doc.DumpPretty();
    std::FILE* out = std::fopen("BENCH_parallel.json", "w");
    if (out != nullptr) {
      std::fwrite(json_text.data(), 1, json_text.size(), out);
      std::fputc('\n', out);
      std::fclose(out);
      std::printf("\nwrote BENCH_parallel.json\n");
    }
  }

  std::printf("all results bit-identical across pool sizes: %s\n",
              all_identical ? "yes" : "NO");
  return all_identical ? 0 : 1;
}
