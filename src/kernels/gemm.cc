#include "kernels/gemm.h"

#include <algorithm>

namespace mmlib::kernels {

namespace {

constexpr int64_t MR = kGemmMR;
constexpr int64_t NR = kGemmNR;

/// One MR x NR register tile: acc[i][j] += sum over k of a[k][i] * b[k][j].
/// The j loop is over independent output columns, so the compiler may
/// vectorize it freely without changing any reduction order; the k loop is
/// the reduction and stays strictly sequential.
inline void MicroKernel(const float* a, const float* b, int64_t kb,
                        float acc[MR][NR]) {
  for (int64_t k = 0; k < kb; ++k) {
    const float* arow = a + k * MR;
    const float* brow = b + k * NR;
    for (int i = 0; i < MR; ++i) {
      const float av = arow[i];
      for (int j = 0; j < NR; ++j) {
        acc[i][j] += av * brow[j];
      }
    }
  }
}

/// Writes the valid region of a register tile back to C. `first` means this
/// is the first k block of a non-accumulating GEMM: overwrite (with bias
/// when present); otherwise add on top.
inline void WriteBack(const float acc[MR][NR], float* c, int64_t ldc,
                      int64_t row0, int64_t col0, int64_t rows, int64_t cols,
                      bool first, const float* bias) {
  for (int64_t i = 0; i < rows; ++i) {
    float* crow = c + (row0 + i) * ldc + col0;
    if (first) {
      if (bias != nullptr) {
        const float* brow = bias + col0;
        for (int64_t j = 0; j < cols; ++j) {
          crow[j] = brow[j] + acc[i][j];
        }
      } else {
        for (int64_t j = 0; j < cols; ++j) {
          crow[j] = acc[i][j];
        }
      }
    } else {
      for (int64_t j = 0; j < cols; ++j) {
        crow[j] += acc[i][j];
      }
    }
  }
}

}  // namespace

void PackStrips(const float* src, int64_t rows, int64_t ld, int64_t k_begin,
                int64_t nk, float* dst) {
  const int64_t strips = CeilDiv(rows, MR);
  for (int64_t s = 0; s < strips; ++s) {
    float* out = dst + s * nk * MR;
    const int64_t live = std::min(MR, rows - s * MR);
    for (int64_t k = 0; k < nk; ++k) {
      for (int64_t i = 0; i < MR; ++i) {
        out[k * MR + i] =
            i < live ? src[(s * MR + i) * ld + k_begin + k] : 0.0f;
      }
    }
  }
}

void PackStripsTransposed(const float* src, int64_t rows, int64_t cols,
                          int64_t ld, float* dst) {
  const int64_t strips = CeilDiv(cols, MR);
  for (int64_t s = 0; s < strips; ++s) {
    float* out = dst + s * rows * MR;
    const int64_t live = std::min(MR, cols - s * MR);
    for (int64_t k = 0; k < rows; ++k) {
      const float* srow = src + k * ld + s * MR;
      for (int64_t i = 0; i < MR; ++i) {
        out[k * MR + i] = i < live ? srow[i] : 0.0f;
      }
    }
  }
}

void PackPanels(const float* src, int64_t rows, int64_t ld, int64_t col_begin,
                int64_t ncols, float* dst) {
  const int64_t panels = CeilDiv(ncols, NR);
  for (int64_t p = 0; p < panels; ++p) {
    float* out = dst + p * rows * NR;
    const int64_t live = std::min(NR, ncols - p * NR);
    const float* base = src + col_begin + p * NR;
    if (live == NR) {
      for (int64_t k = 0; k < rows; ++k) {
        const float* srow = base + k * ld;
        for (int64_t j = 0; j < NR; ++j) {
          out[k * NR + j] = srow[j];
        }
      }
    } else {
      for (int64_t k = 0; k < rows; ++k) {
        const float* srow = base + k * ld;
        for (int64_t j = 0; j < NR; ++j) {
          out[k * NR + j] = j < live ? srow[j] : 0.0f;
        }
      }
    }
  }
}

void PackPanelsTransposed(const float* src, int64_t rows, int64_t cols,
                          int64_t ld, int64_t col_begin, int64_t ncols,
                          float* dst) {
  (void)rows;
  const int64_t panels = CeilDiv(ncols, NR);
  for (int64_t p = 0; p < panels; ++p) {
    float* out = dst + p * cols * NR;
    const int64_t live = std::min(NR, ncols - p * NR);
    for (int64_t k = 0; k < cols; ++k) {
      for (int64_t j = 0; j < NR; ++j) {
        out[k * NR + j] =
            j < live ? src[(col_begin + p * NR + j) * ld + k] : 0.0f;
      }
    }
  }
}

void GemmPacked(const float* a, const float* b, int64_t m, int64_t n,
                int64_t k_total, int64_t kc, float* c, int64_t ldc,
                bool accumulate, bool rows_outer, const float* bias) {
  if (m <= 0 || n <= 0) {
    return;
  }
  if (kc <= 0) {
    kc = k_total;
  }
  const int64_t strips = CeilDiv(m, MR);
  const int64_t panels = CeilDiv(n, NR);
  // k_total == 0: a non-accumulating call must still initialize C.
  if (k_total == 0) {
    if (!accumulate) {
      for (int64_t r = 0; r < m; ++r) {
        for (int64_t col = 0; col < n; ++col) {
          c[r * ldc + col] = bias != nullptr ? bias[col] : 0.0f;
        }
      }
    }
    return;
  }
  for (int64_t pc = 0; pc < k_total; pc += kc) {
    const int64_t kb = std::min(kc, k_total - pc);
    const bool first = pc == 0 && !accumulate;
    auto run_tile = [&](int64_t s, int64_t p) {
      const float* ap = a + s * k_total * MR + pc * MR;
      const float* bp = b + p * k_total * NR + pc * NR;
      float acc[MR][NR] = {};
      MicroKernel(ap, bp, kb, acc);
      WriteBack(acc, c, ldc, s * MR, p * NR, std::min(MR, m - s * MR),
                std::min(NR, n - p * NR), first, bias);
    };
    if (rows_outer) {
      for (int64_t s = 0; s < strips; ++s) {
        for (int64_t p = 0; p < panels; ++p) {
          run_tile(s, p);
        }
      }
    } else {
      for (int64_t p = 0; p < panels; ++p) {
        for (int64_t s = 0; s < strips; ++s) {
          run_tile(s, p);
        }
      }
    }
  }
}

}  // namespace mmlib::kernels
