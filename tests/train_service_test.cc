#include <gtest/gtest.h>

#include <memory>

#include "core/train_service.h"
#include "models/zoo.h"

namespace mmlib::core {
namespace {

class TrainServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.epochs = 2;
    config_.max_batches_per_epoch = 2;
    config_.seed = 77;
    config_.sgd.momentum = 0.9f;
    config_.loader.batch_size = 4;
    config_.loader.image_size = 28;
    config_.loader.num_classes = 10;
    config_.loader.seed = 77;
    dataset_ = std::make_unique<data::SyntheticImageDataset>(
        data::PaperDatasetId::kCocoOutdoor512, 4096);
  }

  nn::Model FreshModel(uint64_t seed = 1) {
    models::ModelConfig config =
        models::DefaultConfig(models::Architecture::kMobileNetV2);
    config.channel_divisor = 8;
    config.image_size = 28;
    config.num_classes = 10;
    config.init_seed = seed;
    return models::BuildModel(config).value();
  }

  TrainConfig config_;
  std::unique_ptr<data::SyntheticImageDataset> dataset_;
};

TEST_F(TrainServiceTest, TrainChangesTrainableParameters) {
  nn::Model model = FreshModel();
  const Digest before = model.ParamsHash();
  ImageTrainService service(dataset_.get(), config_);
  auto times = service.Train(&model, /*deterministic=*/true, 0);
  ASSERT_TRUE(times.ok()) << times.status();
  EXPECT_NE(model.ParamsHash(), before);
  EXPECT_GT(times->forward_seconds, 0.0);
  EXPECT_GT(times->backward_seconds, 0.0);
  EXPECT_GT(times->data_load_seconds, 0.0);
  EXPECT_GT(service.last_loss(), 0.0f);
}

TEST_F(TrainServiceTest, DeterministicTrainingIsBitReproducible) {
  // Paper Section 2.4: same code, data, seeds, deterministic ops =>
  // exactly the same updated model.
  nn::Model a = FreshModel();
  nn::Model b = FreshModel();
  ImageTrainService sa(dataset_.get(), config_);
  ImageTrainService sb(dataset_.get(), config_);
  ASSERT_TRUE(sa.Train(&a, true, 0).ok());
  ASSERT_TRUE(sb.Train(&b, true, 12345).ok());  // scheduler seed irrelevant
  EXPECT_EQ(a.ParamsHash(), b.ParamsHash());
}

TEST_F(TrainServiceTest, NonDeterministicTrainingDiverges) {
  nn::Model a = FreshModel();
  nn::Model b = FreshModel();
  ImageTrainService sa(dataset_.get(), config_);
  ImageTrainService sb(dataset_.get(), config_);
  ASSERT_TRUE(sa.Train(&a, false, 111).ok());
  ASSERT_TRUE(sb.Train(&b, false, 222).ok());
  EXPECT_NE(a.ParamsHash(), b.ParamsHash());
}

TEST_F(TrainServiceTest, SeedChangesResult) {
  nn::Model a = FreshModel();
  nn::Model b = FreshModel();
  ImageTrainService sa(dataset_.get(), config_);
  TrainConfig other = config_;
  other.seed = 78;
  other.loader.seed = 78;
  ImageTrainService sb(dataset_.get(), other);
  ASSERT_TRUE(sa.Train(&a, true, 0).ok());
  ASSERT_TRUE(sb.Train(&b, true, 0).ok());
  EXPECT_NE(a.ParamsHash(), b.ParamsHash());
}

TEST_F(TrainServiceTest, ConfigJsonRoundtrip) {
  const json::Value doc = config_.ToJson();
  auto restored = TrainConfig::FromJson(doc).value();
  EXPECT_EQ(restored.epochs, config_.epochs);
  EXPECT_EQ(restored.max_batches_per_epoch, config_.max_batches_per_epoch);
  EXPECT_EQ(restored.seed, config_.seed);
  EXPECT_EQ(restored.sgd.momentum, config_.sgd.momentum);
  EXPECT_EQ(restored.loader.batch_size, config_.loader.batch_size);
  EXPECT_EQ(restored.loader.seed, config_.loader.seed);
}

TEST_F(TrainServiceTest, ConfigFromJsonRejectsMissingFields) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("epochs", 1);
  EXPECT_FALSE(TrainConfig::FromJson(doc).ok());
}

TEST_F(TrainServiceTest, CaptureProvenanceDescribesWrappers) {
  ImageTrainService service(dataset_.get(), config_);
  auto provenance = service.CaptureProvenance().value();
  EXPECT_EQ(provenance.dataset, dataset_.get());
  EXPECT_TRUE(provenance.optimizer_state.empty());  // pre-training

  const json::Value& doc = provenance.train_service_doc;
  EXPECT_EQ(doc.GetString("class_name").value(), "ImageTrainService");
  const json::Value* wrappers = doc.FindMember("wrappers");
  ASSERT_NE(wrappers, nullptr);
  // Figure 5: a stateless dataloader wrapper and a stateful optimizer
  // wrapper, each with class name and import.
  const json::Value* dataloader = wrappers->FindMember("dataloader");
  ASSERT_NE(dataloader, nullptr);
  EXPECT_EQ(dataloader->GetString("class_name").value(), "data.DataLoader");
  EXPECT_TRUE(dataloader->Has("import"));
  const json::Value* optimizer = wrappers->FindMember("optimizer");
  ASSERT_NE(optimizer, nullptr);
  EXPECT_FALSE(optimizer->GetBool("has_state").value());
}

TEST_F(TrainServiceTest, ProvenanceAfterTrainingHasOptimizerState) {
  nn::Model model = FreshModel();
  ImageTrainService service(dataset_.get(), config_);
  ASSERT_TRUE(service.Train(&model, true, 0).ok());
  auto provenance = service.CaptureProvenance().value();
  EXPECT_FALSE(provenance.optimizer_state.empty());
  const json::Value* optimizer =
      provenance.train_service_doc.FindMember("wrappers")->FindMember(
          "optimizer");
  EXPECT_TRUE(optimizer->GetBool("has_state").value());
}

TEST_F(TrainServiceTest, RestoredServiceReproducesTraining) {
  // Train with the original service, then rebuild one from the provenance
  // documents and verify it performs the identical training.
  nn::Model original = FreshModel();
  ImageTrainService service(dataset_.get(), config_);
  auto provenance = service.CaptureProvenance().value();
  ASSERT_TRUE(service.Train(&original, true, 0).ok());

  auto dataset_copy = std::make_unique<data::SyntheticImageDataset>(
      data::PaperDatasetId::kCocoOutdoor512, 4096);
  auto restored =
      RestoreTrainService(provenance.train_service_doc,
                          provenance.optimizer_state,
                          std::move(dataset_copy))
          .value();
  nn::Model replay = FreshModel();
  ASSERT_TRUE(restored->Train(&replay, true, 0).ok());
  EXPECT_EQ(replay.ParamsHash(), original.ParamsHash());
}

TEST_F(TrainServiceTest, OptimizerStateCarriesAcrossTrainCalls) {
  // Two consecutive trainings with momentum: replaying the second training
  // only reproduces the result if the captured optimizer state is restored.
  nn::Model model = FreshModel();
  ImageTrainService service(dataset_.get(), config_);
  ASSERT_TRUE(service.Train(&model, true, 0).ok());
  const Bytes snapshot_params = model.SerializeParams();
  auto provenance = service.CaptureProvenance().value();
  ASSERT_FALSE(provenance.optimizer_state.empty());
  ASSERT_TRUE(service.Train(&model, true, 0).ok());
  const Digest after_second = model.ParamsHash();

  // Replay WITH the state: matches.
  {
    nn::Model replay = FreshModel();
    ASSERT_TRUE(replay.LoadParams(snapshot_params).ok());
    auto restored = RestoreTrainService(
                        provenance.train_service_doc,
                        provenance.optimizer_state,
                        std::make_unique<data::SyntheticImageDataset>(
                            data::PaperDatasetId::kCocoOutdoor512, 4096))
                        .value();
    ASSERT_TRUE(restored->Train(&replay, true, 0).ok());
    EXPECT_EQ(replay.ParamsHash(), after_second);
  }
  // Replay WITHOUT the state: momentum resets, result differs.
  {
    nn::Model replay = FreshModel();
    ASSERT_TRUE(replay.LoadParams(snapshot_params).ok());
    auto restored = RestoreTrainService(
                        provenance.train_service_doc, Bytes{},
                        std::make_unique<data::SyntheticImageDataset>(
                            data::PaperDatasetId::kCocoOutdoor512, 4096))
                        .value();
    ASSERT_TRUE(restored->Train(&replay, true, 0).ok());
    EXPECT_NE(replay.ParamsHash(), after_second);
  }
}

TEST_F(TrainServiceTest, AdamTrainingIsReproducibleViaProvenance) {
  // The stronger state-file test: Adam is always stateful, so replaying a
  // second training only succeeds when the captured moments are restored.
  TrainConfig config = config_;
  config.optimizer = OptimizerKind::kAdam;
  config.adam.learning_rate = 0.01f;

  nn::Model model = FreshModel();
  ImageTrainService service(dataset_.get(), config);
  ASSERT_TRUE(service.Train(&model, true, 0).ok());
  const Bytes snapshot = model.SerializeParams();
  auto provenance = service.CaptureProvenance().value();
  ASSERT_FALSE(provenance.optimizer_state.empty());
  EXPECT_EQ(provenance.train_service_doc.FindMember("wrappers")
                ->FindMember("optimizer")
                ->GetString("class_name")
                .value(),
            "nn.AdamOptimizer");
  ASSERT_TRUE(service.Train(&model, true, 0).ok());
  const Digest after_second = model.ParamsHash();

  nn::Model replay = FreshModel();
  ASSERT_TRUE(replay.LoadParams(snapshot).ok());
  auto restored = RestoreTrainService(
                      provenance.train_service_doc,
                      provenance.optimizer_state,
                      std::make_unique<data::SyntheticImageDataset>(
                          data::PaperDatasetId::kCocoOutdoor512, 4096))
                      .value();
  ASSERT_TRUE(restored->Train(&replay, true, 0).ok());
  EXPECT_EQ(replay.ParamsHash(), after_second);
}

TEST_F(TrainServiceTest, AdamConfigJsonRoundtrip) {
  TrainConfig config = config_;
  config.optimizer = OptimizerKind::kAdam;
  config.adam.beta1 = 0.8f;
  auto restored = TrainConfig::FromJson(config.ToJson()).value();
  EXPECT_EQ(restored.optimizer, OptimizerKind::kAdam);
  EXPECT_EQ(restored.adam.beta1, 0.8f);
}

TEST_F(TrainServiceTest, LrScheduleChangesTrainingAndIsReplayable) {
  TrainConfig config = config_;
  config.epochs = 3;
  config.lr_decay_gamma = 0.5;
  config.lr_decay_every_epochs = 1;

  // The schedule changes the result relative to a constant learning rate.
  nn::Model scheduled = FreshModel();
  nn::Model constant = FreshModel();
  ImageTrainService sa(dataset_.get(), config);
  ImageTrainService sb(dataset_.get(), config_);
  ASSERT_TRUE(sa.Train(&scheduled, true, 0).ok());
  TrainConfig constant_config = config_;
  constant_config.epochs = 3;
  ImageTrainService sc(dataset_.get(), constant_config);
  ASSERT_TRUE(sc.Train(&constant, true, 0).ok());
  EXPECT_NE(scheduled.ParamsHash(), constant.ParamsHash());

  // And it is reproduced exactly by a restored service.
  ImageTrainService original(dataset_.get(), config);
  auto provenance = original.CaptureProvenance().value();
  nn::Model trained = FreshModel();
  ASSERT_TRUE(original.Train(&trained, true, 0).ok());

  auto restored = RestoreTrainService(
                      provenance.train_service_doc, Bytes{},
                      std::make_unique<data::SyntheticImageDataset>(
                          data::PaperDatasetId::kCocoOutdoor512, 4096))
                      .value();
  nn::Model replay = FreshModel();
  ASSERT_TRUE(restored->Train(&replay, true, 0).ok());
  EXPECT_EQ(replay.ParamsHash(), trained.ParamsHash());
}

TEST_F(TrainServiceTest, LrScheduleRoundtripsThroughJson) {
  TrainConfig config = config_;
  config.lr_decay_gamma = 0.25;
  config.lr_decay_every_epochs = 2;
  auto restored = TrainConfig::FromJson(config.ToJson()).value();
  EXPECT_DOUBLE_EQ(restored.lr_decay_gamma, 0.25);
  EXPECT_EQ(restored.lr_decay_every_epochs, 2);
}

TEST_F(TrainServiceTest, ConfigRejectsUnknownOptimizer) {
  json::Value doc = config_.ToJson();
  doc.Set("optimizer", "rmsprop");
  EXPECT_FALSE(TrainConfig::FromJson(doc).ok());
}

TEST_F(TrainServiceTest, RestoreRejectsUnknownClass) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("class_name", "MysteryService");
  auto result = RestoreTrainService(doc, Bytes{}, nullptr);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(TrainServiceTest, FullDatasetEpochWhenUnlimited) {
  TrainConfig config = config_;
  config.epochs = 1;
  config.max_batches_per_epoch = -1;
  config.loader.batch_size = 128;
  data::SyntheticImageDataset tiny(data::PaperDatasetId::kCocoOutdoor512,
                                   1 << 18);
  ImageTrainService service(&tiny, config);
  nn::Model model = FreshModel();
  auto times = service.Train(&model, true, 0);
  ASSERT_TRUE(times.ok()) << times.status();
}

}  // namespace
}  // namespace mmlib::core
