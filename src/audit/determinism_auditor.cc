#include "audit/determinism_auditor.h"

#include <utility>

#include "check/check.h"
#include "check/validators.h"

namespace mmlib::audit {

namespace {

const char* PassName(AuditEvent::Pass pass) {
  return pass == AuditEvent::Pass::kForward ? "forward" : "backward";
}

}  // namespace

std::string AuditDivergence::ToString() const {
  return std::string(PassName(pass)) + " event #" + std::to_string(position) +
         " (" + layer_name + ") of run " + std::to_string(run) +
         " diverged: expected " + expected.ToHex() + ", got " +
         actual.ToHex();
}

void DeterminismAuditor::BeginRun() {
  MMLIB_CHECK(!run_active_) << "BeginRun while a run is already active";
  run_active_ = true;
  run_diverged_ = false;
  cursor_ = 0;
}

Status DeterminismAuditor::EndRun() {
  MMLIB_CHECK(run_active_) << "EndRun without BeginRun";
  run_active_ = false;
  const size_t run = completed_runs_;
  ++completed_runs_;

  if (run == 0) {
    return Status::OK();  // Reference run: nothing to compare against.
  }
  if (run_diverged_) {
    return Status::Corruption("determinism audit: " + divergence_->ToString());
  }
  if (cursor_ != reference_.size()) {
    return Status::Corruption(
        "determinism audit: run " + std::to_string(run) + " recorded " +
        std::to_string(cursor_) + " events, reference has " +
        std::to_string(reference_.size()));
  }
  return Status::OK();
}

void DeterminismAuditor::OnForward(const std::string& layer_name,
                                   const Tensor& output) {
  Record(AuditEvent::Pass::kForward, layer_name, output);
}

void DeterminismAuditor::OnBackward(const std::string& layer_name,
                                    const Tensor& grad_input) {
  if (options_.include_backward) {
    Record(AuditEvent::Pass::kBackward, layer_name, grad_input);
  }
}

void DeterminismAuditor::Record(AuditEvent::Pass pass,
                                const std::string& layer_name,
                                const Tensor& tensor) {
  if (!run_active_) {
    return;  // Observer attached outside an audited section; ignore.
  }
  const Digest digest = tensor.ContentHash();
  if (completed_runs_ == 0) {
    reference_.push_back(AuditEvent{pass, layer_name, digest});
    return;
  }
  const size_t position = cursor_++;
  if (run_diverged_) {
    return;  // Only the first divergence of a run is reported.
  }
  const bool matches = position < reference_.size() &&
                       reference_[position].pass == pass &&
                       reference_[position].layer_name == layer_name &&
                       reference_[position].digest == digest;
  if (matches) {
    return;
  }
  AuditDivergence divergence;
  divergence.run = completed_runs_;
  divergence.position = position;
  divergence.pass = pass;
  divergence.layer_name = layer_name;
  if (position < reference_.size()) {
    divergence.expected = reference_[position].digest;
  }
  divergence.actual = digest;
  run_diverged_ = true;
  if (!divergence_.has_value()) {
    divergence_ = divergence;
  }
  MMLIB_CHECK(!options_.fatal)
      << "determinism audit: " << divergence.ToString();
}

Result<Digest> DeterminismAuditor::ReferenceRoot() const {
  if (completed_runs_ == 0 || reference_.empty()) {
    return Status::FailedPrecondition(
        "determinism audit: no completed reference run");
  }
  std::vector<Digest> leaves;
  leaves.reserve(reference_.size());
  for (const AuditEvent& event : reference_) {
    leaves.push_back(event.digest);
  }
  MMLIB_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::Build(std::move(leaves)));
  return tree.root();
}

void DeterminismAuditor::Reset() {
  reference_.clear();
  divergence_.reset();
  completed_runs_ = 0;
  cursor_ = 0;
  run_active_ = false;
  run_diverged_ = false;
}

Status AuditDeterminism(nn::Model* model, const Tensor& input, uint64_t seed,
                        size_t runs, DeterminismAuditOptions options) {
  MMLIB_RETURN_IF_ERROR(check::ValidatePositive(static_cast<int64_t>(runs),
                                         "AuditDeterminism runs")
                            .WithContext("determinism audit"));
  DeterminismAuditor auditor(options);
  nn::ActivationObserver* previous = model->observer();
  model->set_observer(&auditor);

  auto run_once = [&]() -> Status {
    nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(seed);
    ctx.set_training(true);
    model->ZeroGrad();
    auditor.BeginRun();
    MMLIB_ASSIGN_OR_RETURN(Tensor output, model->Forward(input, &ctx));
    Tensor grad_output = Tensor::Full(output.shape(), 1.0f);
    MMLIB_RETURN_IF_ERROR(model->Backward(grad_output, &ctx).status());
    return auditor.EndRun();
  };

  Status status = Status::OK();
  for (size_t r = 0; r < runs && status.ok(); ++r) {
    status = run_once();
  }
  model->set_observer(previous);
  return status;
}

}  // namespace mmlib::audit
