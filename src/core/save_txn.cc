#include "core/save_txn.h"

namespace mmlib::core {

SaveTransaction::~SaveTransaction() {
  if (committed_) {
    return;
  }
  // Best effort, newest first: a failure to undo one write (e.g. the link
  // went down for good) must not stop the remaining deletions. Remote
  // deletes retry transient errors on their own.
  for (auto it = doc_ids_.rbegin(); it != doc_ids_.rend(); ++it) {
    const Status status = backends_.docs->Delete(it->first, it->second);
    (void)status;
  }
  for (auto it = file_ids_.rbegin(); it != file_ids_.rend(); ++it) {
    const Status status = backends_.files->Delete(*it);
    (void)status;
  }
}

Result<std::string> SaveTransaction::SaveFile(const Bytes& content) {
  MMLIB_ASSIGN_OR_RETURN(std::string id, backends_.files->SaveFile(content));
  file_ids_.push_back(id);
  return id;
}

Result<std::string> SaveTransaction::Insert(const std::string& collection,
                                            json::Value doc) {
  MMLIB_ASSIGN_OR_RETURN(std::string id,
                         backends_.docs->Insert(collection, std::move(doc)));
  doc_ids_.emplace_back(collection, id);
  return id;
}

}  // namespace mmlib::core
