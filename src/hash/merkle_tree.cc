#include "hash/merkle_tree.h"

#include <algorithm>

#include "hash/sha256.h"
#include "util/bytes.h"

namespace mmlib {

Result<MerkleTree> MerkleTree::Build(std::vector<Digest> leaf_hashes) {
  if (leaf_hashes.empty()) {
    return Status::InvalidArgument("Merkle tree requires at least one leaf");
  }
  MerkleTree tree;
  tree.leaf_count_ = leaf_hashes.size();
  tree.padded_leaves_ = 1;
  while (tree.padded_leaves_ < leaf_hashes.size()) {
    tree.padded_leaves_ *= 2;
  }
  tree.nodes_.assign(2 * tree.padded_leaves_, Digest{});
  for (size_t i = 0; i < leaf_hashes.size(); ++i) {
    tree.nodes_[tree.padded_leaves_ + i] = leaf_hashes[i];
  }
  for (size_t i = tree.padded_leaves_ - 1; i >= 1; --i) {
    tree.nodes_[i] = Sha256::HashPair(tree.nodes_[2 * i], tree.nodes_[2 * i + 1]);
  }
  return tree;
}

void MerkleTree::DiffNodes(const MerkleTree& other, size_t index,
                           MerkleDiff* diff) const {
  ++diff->comparisons;
  if (nodes_[index] == other.nodes_[index]) {
    return;
  }
  if (index >= padded_leaves_) {
    const size_t leaf_index = index - padded_leaves_;
    if (leaf_index < leaf_count_) {
      diff->changed_leaves.push_back(leaf_index);
    }
    return;
  }
  DiffNodes(other, 2 * index, diff);
  DiffNodes(other, 2 * index + 1, diff);
}

Result<MerkleDiff> MerkleTree::Diff(const MerkleTree& before,
                                    const MerkleTree& after) {
  if (before.leaf_count_ != after.leaf_count_) {
    return Status::InvalidArgument(
        "cannot diff Merkle trees with different leaf counts: " +
        std::to_string(before.leaf_count_) + " vs " +
        std::to_string(after.leaf_count_));
  }
  MerkleDiff diff;
  before.DiffNodes(after, 1, &diff);
  return diff;
}

Bytes MerkleTree::Serialize() const {
  // Only the leaf digests are persisted; the inner nodes are recomputed on
  // load. This keeps the persisted form proportional to the layer count
  // (no power-of-two padding) — it is pure metadata next to parameters.
  BytesWriter writer;
  writer.WriteU64(leaf_count_);
  for (size_t i = 0; i < leaf_count_; ++i) {
    const Digest& d = nodes_[padded_leaves_ + i];
    writer.WriteRaw(d.bytes.data(), d.bytes.size());
  }
  // Digest bytes are opaque to the parser, so without a checksum a flipped
  // bit would deserialize as a different-but-valid tree. The CRC trailer
  // makes any in-flight damage detectable.
  Bytes serialized = writer.TakeBytes();
  const uint32_t crc = Crc32(serialized);
  BytesWriter trailer;
  trailer.WriteU32(crc);
  const Bytes trailer_bytes = trailer.TakeBytes();
  serialized.insert(serialized.end(), trailer_bytes.begin(),
                    trailer_bytes.end());
  return serialized;
}

size_t BucketForKey(std::string_view key, size_t bucket_count) {
  if (bucket_count == 0) {
    return 0;
  }
  return Crc32(reinterpret_cast<const uint8_t*>(key.data()), key.size()) %
         bucket_count;
}

Result<MerkleTree> BuildBucketTree(std::vector<KeyedDigest> items,
                                   size_t bucket_count) {
  if (bucket_count == 0) {
    return Status::InvalidArgument("bucket tree requires at least one bucket");
  }
  // Sorting by key makes the bucket digests independent of enumeration
  // order, so any two replicas holding the same items build the same tree.
  std::sort(items.begin(), items.end());
  std::vector<Sha256> hashers(bucket_count);
  std::vector<bool> occupied(bucket_count, false);
  for (const auto& [key, digest] : items) {
    const size_t bucket = BucketForKey(key, bucket_count);
    Sha256& hasher = hashers[bucket];
    // Key length (little-endian, so the digest is endianness-independent)
    // guards against ambiguous concatenations of key bytes and digest bytes
    // across adjacent items.
    uint8_t length_bytes[8];
    uint64_t key_size = key.size();
    for (uint8_t& b : length_bytes) {
      b = static_cast<uint8_t>(key_size & 0xff);
      key_size >>= 8;
    }
    hasher.Update(length_bytes, sizeof(length_bytes));
    hasher.Update(key);
    hasher.Update(digest.bytes.data(), digest.bytes.size());
    occupied[bucket] = true;
  }
  std::vector<Digest> leaves(bucket_count);
  for (size_t b = 0; b < bucket_count; ++b) {
    if (occupied[b]) {
      leaves[b] = hashers[b].Finish();
    }  // An empty bucket keeps the all-zero digest.
  }
  return MerkleTree::Build(std::move(leaves));
}

Result<MerkleTree> MerkleTree::Deserialize(const Bytes& data) {
  if (data.size() < sizeof(uint64_t) + sizeof(uint32_t)) {
    return Status::Corruption("Merkle tree payload too short");
  }
  const size_t body_size = data.size() - sizeof(uint32_t);
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(uint64_t leaf_count, reader.ReadU64());
  if (leaf_count == 0 ||
      leaf_count > (body_size - sizeof(uint64_t)) / 32) {
    return Status::Corruption("invalid Merkle tree header");
  }
  std::vector<Digest> leaves(leaf_count);
  for (Digest& d : leaves) {
    MMLIB_RETURN_IF_ERROR(reader.ReadRaw(d.bytes.data(), d.bytes.size()));
  }
  MMLIB_ASSIGN_OR_RETURN(uint32_t stored_crc, reader.ReadU32());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after Merkle tree");
  }
  if (Crc32(data.data(), body_size) != stored_crc) {
    return Status::Corruption("Merkle tree checksum mismatch");
  }
  return Build(std::move(leaves));
}

}  // namespace mmlib
