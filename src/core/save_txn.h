#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/types.h"
#include "json/json.h"
#include "util/bytes.h"
#include "util/result.h"

namespace mmlib::core {

/// Scoped rollback guard for one logical multi-step model save. A save
/// writes several files and documents (environment doc, code doc, Merkle
/// tree, parameter payload, provenance docs, model doc); if it fails after
/// some of them succeeded, the survivors are orphans — stored bytes no
/// model document references. Route every write of a save through a
/// SaveTransaction: on destruction without Commit() the recorded writes
/// are deleted again in reverse order (best effort), so an aborted save
/// leaves the stores as it found them.
///
/// With a journal in the backends the transaction is additionally
/// crash-consistent (write-ahead mode): each write's id is allocated first
/// and appended to a durable journal record *before* the write happens, and
/// Commit() durably marks the record complete. A process killed anywhere in
/// between leaves only writes the journal knows about, which the persistent
/// stores undo (or, past the commit mark, keep) on reopen — see
/// persist/journal.h. In-process rollback still applies to ordinary failures;
/// only a simulated crash (util::CrashPoint::crash_in_progress) skips it,
/// because a killed process would not have run it either.
class SaveTransaction {
 public:
  explicit SaveTransaction(const StorageBackends& backends)
      : backends_(backends) {}
  ~SaveTransaction();

  SaveTransaction(const SaveTransaction&) = delete;
  SaveTransaction& operator=(const SaveTransaction&) = delete;

  /// Persists `content` via the file store and records the id for rollback.
  Result<std::string> SaveFile(const Bytes& content);

  /// Inserts `doc` into `collection` and records the id for rollback.
  Result<std::string> Insert(const std::string& collection, json::Value doc);

  /// Keeps every recorded write; rollback is disarmed. In write-ahead mode
  /// this durably marks the journal record committed (the atomic point of
  /// the save) and then retires it.
  [[nodiscard]] Status Commit();

  /// Writes recorded so far and still subject to rollback.
  size_t pending_writes() const {
    return committed_ ? 0 : file_ids_.size() + doc_ids_.size();
  }

 private:
  bool journaled() const { return backends_.journal != nullptr; }
  Status EnsureBegun();

  StorageBackends backends_;
  std::vector<std::string> file_ids_;
  // (collection, id) pairs, in insertion order.
  std::vector<std::pair<std::string, std::string>> doc_ids_;
  std::string txn_id_;  // journal record id; empty until the first write
  bool committed_ = false;
};

}  // namespace mmlib::core
