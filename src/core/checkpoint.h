#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>

#include "core/types.h"
#include "util/bytes.h"
#include "util/random.h"
#include "util/result.h"
#include "util/worker_thread.h"

namespace mmlib::core {

/// Collection holding checkpoint metadata documents.
inline constexpr const char* kCheckpointsCollection = "checkpoints";

/// Everything a deterministic training run needs to continue mid-stream and
/// land bit-identically on the uninterrupted result: the model parameters,
/// the optimizer's accumulated state (momentum/Adam moments *and* the
/// scheduled learning rate), the execution context's RNG cursor (dropout
/// and augmentation draws consumed so far), and the data-loader position.
/// The loader itself is stateless given (seed, epoch, batch), so its
/// position is just the two indices.
struct TrainCheckpoint {
  std::string run_id;
  /// Optimizer steps completed.
  int64_t step = 0;
  /// Epoch the run was in when the checkpoint was taken.
  int64_t epoch = 0;
  /// Next batch index within `epoch` (may equal the batch count, meaning
  /// the epoch's batches are done but its LR decay has not applied yet —
  /// resume re-applies it, exactly like the uninterrupted run would have).
  int64_t next_batch = 0;
  Bytes model_params;
  Bytes optimizer_state;
  RngState rng;
  float last_loss = 0.0f;
};

struct CheckpointOptions {
  /// Persist a checkpoint every this many optimizer steps (plus one at step
  /// zero when a run starts, so even an immediate crash loses nothing that
  /// was handed to the run).
  int64_t every_steps = 1;
  /// Delete a run's older checkpoints after each successful write; only the
  /// latest is ever needed, and pruning keeps checkpoint storage O(1).
  bool prune_previous = true;
  /// Hand each Write to a background worker so the save overlaps the next
  /// training steps instead of stalling them. At most one save is in flight:
  /// the next Write (and any read) first waits for the previous save, so
  /// storage traffic keeps exactly the synchronous order and every flow
  /// stays bit-identical to the synchronous run. The environment variable
  /// MMLIB_ASYNC_CHECKPOINTS ("1"/"0") overrides this at manager
  /// construction, so whole test suites can be swept in either mode.
  bool async_write = false;
};

/// Persists and restores training checkpoints through the storage backends.
/// Writes go through a SaveTransaction, so with a journal attached a crash
/// mid-checkpoint rolls back cleanly on reopen and can never corrupt the
/// latest complete checkpoint — the write-ahead guarantee extends to
/// training state.
///
/// Synchronous mode stalls the caller for the whole save. Asynchronous mode
/// (CheckpointOptions::async_write) takes the snapshot the caller already
/// built and hands it to a single background worker; the caller keeps
/// training while the save runs. Ordering discipline keeps the house
/// bit-identity invariant: at most one save is in flight, the next Write
/// waits for the previous one, and every read path (LoadLatest, DeleteRun)
/// drains first — so the storage backends (and the seeded fault RNG, whose
/// draws depend only on transfer order) see exactly the synchronous
/// sequence of operations.
///
/// Virtual-time accounting makes the overlap measurable on the simulated
/// clock: callers report training compute through ChargeCompute, and at
/// each settle point (the next Write, or Drain) the async manager absorbs
/// up to the previous save's cost before charging the remainder — each
/// save window costs max(save, compute) instead of save + compute.
///
/// Crash semantics (simulated kills): crash sites cover both halves of the
/// async path. "checkpoint.enqueue" fires on the training thread before the
/// snapshot is handed off; "checkpoint.write" fires inside the save itself,
/// which in async mode runs on the worker — the worker catches the
/// CrashException there, the save is left exactly as a kill would leave it
/// (no rollback), and the exception resurfaces on the training thread at
/// the next Write/Drain, modeling the moment the training process notices
/// it is being killed.
class CheckpointManager {
 public:
  CheckpointManager(const StorageBackends& backends,
                    CheckpointOptions options);
  ~CheckpointManager();

  int64_t every_steps() const { return options_.every_steps; }
  bool async_write() const { return options_.async_write; }

  /// Persists one checkpoint (params file + binary state file + metadata
  /// document) and prunes the run's older checkpoints. Returns the
  /// checkpoint document id — in async mode a placeholder; the save
  /// completes in the background and errors surface at the next
  /// Write/Drain.
  Result<std::string> Write(TrainCheckpoint checkpoint);

  /// Loads the run's checkpoint with the highest step into `out`; returns
  /// false when the run has none. Drains any in-flight async save first.
  Result<bool> LoadLatest(const std::string& run_id, TrainCheckpoint* out);

  /// Removes every checkpoint of a run (files and documents); call once
  /// the run's result is durably saved and the checkpoints are dead weight.
  /// Drains any in-flight async save first.
  Status DeleteRun(const std::string& run_id);

  /// Reports virtual training-compute seconds spent since the last settle
  /// point. Settled lazily: in async mode, compute that overlapped an
  /// in-flight save is absorbed into the save's already-charged cost; the
  /// remainder (and all of it in sync mode) is charged to the network's
  /// virtual clock. No-op without a network backend.
  void ChargeCompute(double seconds);

  /// Waits for any in-flight async save, settles compute accounting, and
  /// surfaces deferred outcomes: rethrows a CrashException a crash site
  /// raised on the worker, and returns the first async save error.
  Status Drain();

  /// Crash-path drain: waits for any in-flight async save to finish (the
  /// background I/O a kill races with), settles compute accounting, and
  /// discards deferred worker outcomes — the caller is already unwinding a
  /// crash of its own. Never throws.
  void FinishInFlight();

  /// Checkpoints successfully written by this manager.
  uint64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_acquire);
  }

  /// Virtual compute seconds absorbed into async save windows so far — the
  /// stall time the non-blocking pipeline saved versus synchronous writes.
  double overlapped_seconds() const;

 private:
  /// The actual save (both modes); contains crash site "checkpoint.write".
  Result<std::string> WriteNow(const TrainCheckpoint& checkpoint);
  /// Hands one snapshot to the background worker (async mode). Callers must
  /// have awaited the previous save; reached only behind the
  /// "checkpoint.enqueue" crash site in Write.
  void SubmitCheckpointSave(TrainCheckpoint checkpoint);
  /// Waits for the worker and rethrows/returns its deferred outcome.
  Status AwaitInFlight();
  /// Charges unabsorbed pending compute to the virtual clock.
  void SettleCompute();
  Status DeleteCheckpointDoc(const std::string& doc_id);

  StorageBackends backends_;
  CheckpointOptions options_;
  std::atomic<uint64_t> checkpoints_written_{0};

  // Async state. `async_mu_` guards the deferred-outcome fields written by
  // the worker; the worker is quiet outside Submit..Drain windows, so the
  // accounting fields are only ever touched by one thread at a time.
  mutable std::mutex async_mu_;
  std::exception_ptr pending_crash_;
  Status async_status_ = Status::OK();
  /// Virtual cost of the last async save, not yet used to absorb compute.
  double unabsorbed_save_seconds_ = 0.0;
  /// Compute reported since the last settle point.
  double pending_compute_seconds_ = 0.0;
  double overlapped_seconds_ = 0.0;
  util::WorkerThread worker_;
};

}  // namespace mmlib::core
