#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "hash/sha256.h"
#include "simnet/network.h"
#include "util/id_generator.h"

namespace mmlib::repl {

/// Quorum sizes of an R-way replicated store. With N replicas, a write
/// commits once `write_quorum` replicas acknowledge it and a read returns
/// once `read_quorum` replicas confirm the value (served bytes plus digest
/// acks). W + R > N gives read-your-writes through any single failure; the
/// default 0 resolves to a majority (N/2 + 1) on both sides.
struct QuorumConfig {
  size_t write_quorum = 0;
  size_t read_quorum = 0;

  static size_t Majority(size_t replica_count) {
    return replica_count / 2 + 1;
  }
  size_t ResolvedWrite(size_t replica_count) const {
    return write_quorum == 0 ? Majority(replica_count) : write_quorum;
  }
  size_t ResolvedRead(size_t replica_count) const {
    return read_quorum == 0 ? Majority(replica_count) : read_quorum;
  }
};

/// Degraded-mode accounting for one replica; FlowResult reports these so an
/// experiment can attribute exactly which replicas a flow leaned on.
struct ReplicaCounters {
  /// Read attempts this replica failed or served damaged/stale bytes for,
  /// making the read fall through to another replica.
  uint64_t read_fallbacks = 0;
  /// Stale-or-damaged copies on this replica rewritten during a read.
  uint64_t read_repairs = 0;
  /// Writes committed at quorum that could not include this replica (down,
  /// partitioned, or transport gave up) — the staleness anti-entropy heals.
  uint64_t write_skips = 0;
  /// Divergent entries on this replica re-copied by the scrubber.
  uint64_t scrub_repairs = 0;
};

/// R-way replicated FileStore over the simulated network. Wraps one
/// RemoteFileStore per backend replica (each bound to its own simnet
/// replica node): writes go to every reachable replica and commit at the
/// write quorum — below it they roll back and fail Unavailable, fast, via
/// a reachability precheck instead of burning the full retry ladder per
/// replica. Reads try a preferred replica (a pure function of the id, so
/// load spreads deterministically), verify the payload against the digest
/// recorded at write time, fall back on Unavailable/damage, and rewrite
/// stale-or-damaged copies in passing (read-repair). Ids are minted by the
/// coordinator, never by a replica, so every replica stores each file under
/// the same id and the id sequence is identical however many replicas are
/// reachable.
class ReplicatedFileStore : public filestore::FileStore {
 public:
  /// `replicas` are borrowed; each should be bound to its simnet replica
  /// node (RemoteFileStore::BindReplica). At least one replica is required;
  /// quorums are validated against the replica count.
  static Result<std::unique_ptr<ReplicatedFileStore>> Create(
      std::vector<filestore::RemoteFileStore*> replicas,
      simnet::Network* network, const QuorumConfig& config = {});

  Result<std::string> SaveFile(const Bytes& content) override;
  Result<std::string> AllocateFileId() override;
  Status WriteAllocated(const std::string& id, const Bytes& content) override;
  Result<Bytes> LoadFile(const std::string& id) override;

  /// Tail-tolerant read for the serving front end: fetches `id` from the
  /// preferred replica and, when that fetch fails, serves damaged bytes, or
  /// costs more virtual time than `hedge_threshold_seconds`, issues a hedge
  /// fetch to the next replica in the read order and serves whichever
  /// verified copy was cheaper. Both fetches are charged to the virtual
  /// clock — hedging trades backend work for tail latency, and the
  /// accounting must show that. Falls back to the full quorum LoadFile path
  /// (read-repair and all) when neither copy verifies. A threshold <= 0
  /// hedges only on failure.
  Result<Bytes> LoadFileHedged(const std::string& id,
                               double hedge_threshold_seconds);

  /// LoadFileHedged calls, hedge fetches actually issued, and hedges whose
  /// copy was the one served (primary failed or was slower).
  uint64_t hedged_read_count() const { return hedged_read_count_; }
  uint64_t hedge_issued_count() const { return hedge_issued_count_; }
  uint64_t hedge_win_count() const { return hedge_win_count_; }

  Status Delete(const std::string& id) override;
  Result<size_t> FileSize(const std::string& id) override;
  Result<std::vector<std::string>> ListFileIds() override;
  Result<Digest> ContentDigest(const std::string& id) override;
  void ReportDamaged(const std::string& id) override;

  /// Logical stored bytes / file count: the most complete replica's view,
  /// so replication does not multiply the paper's storage-consumption
  /// numbers (those measure the model store's logical footprint).
  size_t TotalStoredBytes() const override;
  size_t FileCount() const override;

  /// Physical bytes across all replica backends (logical × replication,
  /// minus whatever staleness the scrubber has not healed yet).
  size_t PhysicalStoredBytes() const;

  size_t replica_count() const { return replicas_.size(); }
  size_t write_quorum() const { return write_quorum_; }
  size_t read_quorum() const { return read_quorum_; }
  filestore::RemoteFileStore* transport(size_t replica) const {
    return replicas_[replica];
  }

  const ReplicaCounters& replica_counters(size_t replica) const {
    return counters_[replica];
  }
  /// Transport-level retries summed across the replica clients.
  uint64_t TransportRetryCount() const;
  /// Operations abandoned on the fail-fast deadline, summed likewise.
  uint64_t DeadlineExhaustedCount() const;

  /// --- Scrubber interface. ---
  /// Digest recorded for `id` at write time; nullptr when unknown.
  const Digest* FindExpectedDigest(const std::string& id) const;
  /// True when `id` was deleted at quorum; a straggler copy resurfacing on
  /// a stale replica must be re-deleted, not re-spread.
  bool IsTombstoned(const std::string& id) const {
    return tombstones_.count(id) != 0;
  }
  void RecordScrubRepair(size_t replica) {
    ++counters_[replica].scrub_repairs;
  }

 private:
  ReplicatedFileStore(std::vector<filestore::RemoteFileStore*> replicas,
                      simnet::Network* network, size_t write_quorum,
                      size_t read_quorum);

  /// Replica the first read attempt for `id` goes to — a stable hash of the
  /// id, so reads spread over replicas but repeat deterministically.
  size_t PreferredReplica(const std::string& id) const;
  /// Read order: rotation starting at the preferred replica, with the
  /// currently suspected replica (ReportDamaged) moved to the back.
  std::vector<size_t> ReadOrder(const std::string& id) const;
  size_t ReachableCount() const;
  Status QuorumWrite(const std::string& id, const Bytes& content);

  /// One hedged-path fetch attempt from `replica`: bytes that verified
  /// against the directory digest (when known), or an error. Reports the
  /// virtual-clock cost of the attempt in `*cost_seconds`.
  Result<Bytes> HedgeFetch(const std::string& id, size_t replica,
                           double* cost_seconds);

  std::vector<filestore::RemoteFileStore*> replicas_;
  simnet::Network* network_;
  size_t write_quorum_;
  size_t read_quorum_;
  IdGenerator id_generator_;
  std::vector<ReplicaCounters> counters_;
  uint64_t hedged_read_count_ = 0;
  uint64_t hedge_issued_count_ = 0;
  uint64_t hedge_win_count_ = 0;
  /// id -> digest of the committed content, recorded by the coordinator at
  /// write time; the read path verifies served bytes against it.
  std::map<std::string, Digest> directory_;
  /// Ids whose digest was adopted from a first read rather than a write;
  /// dropped again if the caller's integrity check rejects those bytes.
  std::set<std::string> adopted_;
  std::set<std::string> tombstones_;
  /// id -> replica that served the most recent successful read.
  std::map<std::string, size_t> last_served_;
  /// id -> replica to try last next time (its bytes failed the caller's
  /// end-to-end check).
  std::map<std::string, size_t> suspects_;
};

/// R-way replicated DocumentStore; the document-side twin of
/// ReplicatedFileStore (same quorum, read-repair, and id-minting rules).
/// Remote document responses are self-describing and rejected when damaged
/// in flight, so a digest mismatch on a served document always means
/// at-rest divergence — no in-flight disambiguation step is needed.
class ReplicatedDocumentStore : public docstore::DocumentStore {
 public:
  static Result<std::unique_ptr<ReplicatedDocumentStore>> Create(
      std::vector<docstore::RemoteDocumentStore*> replicas,
      simnet::Network* network, const QuorumConfig& config = {});

  Result<std::string> Insert(const std::string& collection,
                             json::Value doc) override;
  Result<std::string> AllocateDocId(const std::string& collection) override;
  Status InsertWithId(const std::string& collection, const std::string& id,
                      json::Value doc) override;
  Result<json::Value> Get(const std::string& collection,
                          const std::string& id) override;
  Status Delete(const std::string& collection, const std::string& id) override;
  Result<std::vector<std::string>> ListIds(
      const std::string& collection) override;
  Result<std::vector<std::string>> ListCollections() override;
  Result<Digest> DocumentDigest(const std::string& collection,
                                const std::string& id) override;
  size_t TotalStoredBytes() const override;
  size_t DocumentCount() const override;
  size_t PhysicalStoredBytes() const;

  size_t replica_count() const { return replicas_.size(); }
  size_t write_quorum() const { return write_quorum_; }
  size_t read_quorum() const { return read_quorum_; }
  docstore::RemoteDocumentStore* transport(size_t replica) const {
    return replicas_[replica];
  }

  const ReplicaCounters& replica_counters(size_t replica) const {
    return counters_[replica];
  }
  uint64_t TransportRetryCount() const;
  uint64_t DeadlineExhaustedCount() const;

  /// --- Scrubber interface. Keys are "collection/id". ---
  const Digest* FindExpectedDigest(const std::string& key) const;
  bool IsTombstoned(const std::string& key) const {
    return tombstones_.count(key) != 0;
  }
  void RecordScrubRepair(size_t replica) {
    ++counters_[replica].scrub_repairs;
  }

  static std::string KeyFor(const std::string& collection,
                            const std::string& id) {
    return collection + "/" + id;
  }

 private:
  ReplicatedDocumentStore(std::vector<docstore::RemoteDocumentStore*> replicas,
                          simnet::Network* network, size_t write_quorum,
                          size_t read_quorum);

  size_t PreferredReplica(const std::string& key) const;
  size_t ReachableCount() const;
  Status QuorumInsert(const std::string& collection, const std::string& id,
                      const json::Value& doc);

  std::vector<docstore::RemoteDocumentStore*> replicas_;
  simnet::Network* network_;
  size_t write_quorum_;
  size_t read_quorum_;
  IdGenerator id_generator_;
  std::vector<ReplicaCounters> counters_;
  std::map<std::string, Digest> directory_;
  std::set<std::string> tombstones_;
};

}  // namespace mmlib::repl
