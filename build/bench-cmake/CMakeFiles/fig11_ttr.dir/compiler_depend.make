# Empty compiler generated dependencies file for fig11_ttr.
# This may be replaced when dependencies are built.
