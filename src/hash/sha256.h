#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace mmlib {

/// A 256-bit digest. Used to checksum model parameters, layer tensors, and
/// persisted files (paper Section 3.1: "To generate checksums we hash the
/// tensor objects").
struct Digest {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Digest& other) const { return bytes == other.bytes; }
  bool operator!=(const Digest& other) const { return !(*this == other); }
  bool operator<(const Digest& other) const { return bytes < other.bytes; }

  /// Lowercase hex representation (64 characters).
  std::string ToHex() const;

  /// Parses a 64-character hex string.
  static Result<Digest> FromHex(std::string_view hex);
};

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch; deterministic
/// across platforms.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `size` bytes.
  void Update(const uint8_t* data, size_t size);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the digest. The object must not be reused.
  Digest Finish();

  /// One-shot helpers.
  static Digest Hash(const uint8_t* data, size_t size);
  static Digest Hash(const Bytes& data) { return Hash(data.data(), data.size()); }
  static Digest Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Hashes the concatenation of two digests; used by the Merkle tree.
  static Digest HashPair(const Digest& left, const Digest& right);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_bytes_ = 0;
  uint8_t buffer_[64];
  size_t buffer_size_ = 0;
};

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Used for cheap
/// frame checksums in the compression codec and file store.
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);
uint32_t Crc32(const Bytes& data);

}  // namespace mmlib

