#include "util/bytes.h"

#include <cstring>

namespace mmlib {

void BytesWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BytesWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void BytesWriter::WriteF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU32(bits);
}

void BytesWriter::WriteF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void BytesWriter::WriteString(std::string_view s) {
  WriteU64(s.size());
  WriteRaw(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

void BytesWriter::WriteBlob(const uint8_t* data, size_t size) {
  WriteU64(size);
  WriteRaw(data, size);
}

void BytesWriter::WriteRaw(const uint8_t* data, size_t size) {
  if (size == 0) {
    return;  // `data` may be null for empty payloads
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Status BytesReader::CheckAvailable(size_t n) const {
  // Phrased as a subtraction: `offset_ + n` could wrap for a corrupt
  // length prefix and slip past the check.
  if (n > size_ - offset_) {
    return Status::Corruption("truncated input: need " + std::to_string(n) +
                              " bytes, have " +
                              std::to_string(size_ - offset_));
  }
  return Status::OK();
}

Result<uint8_t> BytesReader::ReadU8() {
  MMLIB_RETURN_IF_ERROR(CheckAvailable(1));
  return data_[offset_++];
}

Result<uint32_t> BytesReader::ReadU32() {
  MMLIB_RETURN_IF_ERROR(CheckAvailable(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 4;
  return v;
}

Result<uint64_t> BytesReader::ReadU64() {
  MMLIB_RETURN_IF_ERROR(CheckAvailable(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(data_[offset_ + i]) << (8 * i);
  }
  offset_ += 8;
  return v;
}

Result<int64_t> BytesReader::ReadI64() {
  MMLIB_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<float> BytesReader::ReadF32() {
  MMLIB_ASSIGN_OR_RETURN(uint32_t bits, ReadU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> BytesReader::ReadF64() {
  MMLIB_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> BytesReader::ReadString() {
  MMLIB_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  MMLIB_RETURN_IF_ERROR(CheckAvailable(size));
  std::string s(reinterpret_cast<const char*>(data_ + offset_), size);
  offset_ += size;
  return s;
}

Result<Bytes> BytesReader::ReadBlob() {
  MMLIB_ASSIGN_OR_RETURN(uint64_t size, ReadU64());
  MMLIB_RETURN_IF_ERROR(CheckAvailable(size));
  Bytes b(data_ + offset_, data_ + offset_ + size);
  offset_ += size;
  return b;
}

Status BytesReader::ReadRaw(uint8_t* out, size_t size) {
  MMLIB_RETURN_IF_ERROR(CheckAvailable(size));
  if (size != 0) {  // `out` may be null for empty payloads
    std::memcpy(out, data_ + offset_, size);
  }
  offset_ += size;
  return Status::OK();
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string ToHex(const uint8_t* data, size_t size) {
  std::string out;
  out.reserve(size * 2);
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0x0f]);
  }
  return out;
}

std::string ToHex(const Bytes& data) { return ToHex(data.data(), data.size()); }

Result<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("invalid hex character");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes StringToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string BytesToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace mmlib
