// fixture-path: src/util/fixture_missing.h
struct FixtureMissingPragma {};
