#include "util/crash_point.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>

namespace mmlib::util {

namespace {

struct Registry {
  std::mutex mutex;
  std::set<std::string> sites;
  std::string armed;      // empty = nothing armed
  uint64_t fire_on_hit = 0;
  uint64_t hits = 0;
};

Registry& registry() {
  static Registry* instance = new Registry();
  return *instance;
}

// Fast path for the overwhelmingly common unarmed case: one relaxed load
// instead of a mutex acquisition per site execution.
std::atomic<bool>& any_armed() {
  static std::atomic<bool> armed{false};
  return armed;
}

std::atomic<bool>& crashing() {
  static std::atomic<bool> flag{false};
  return flag;
}

}  // namespace

bool CrashPoint::Register(const std::string& name) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.sites.insert(name);
  return true;
}

void CrashPoint::Arm(const std::string& name, uint64_t fire_on_hit) {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.sites.insert(name);
  reg.armed = name;
  reg.fire_on_hit = fire_on_hit == 0 ? 1 : fire_on_hit;
  reg.hits = 0;
  any_armed().store(true, std::memory_order_release);
}

void CrashPoint::Disarm() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  reg.armed.clear();
  reg.fire_on_hit = 0;
  reg.hits = 0;
  any_armed().store(false, std::memory_order_release);
}

bool CrashPoint::Fires(const std::string& name) {
  if (!any_armed().load(std::memory_order_acquire)) {
    return false;
  }
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (reg.armed != name) {
    return false;
  }
  if (++reg.hits < reg.fire_on_hit) {
    return false;
  }
  // Fire exactly once: the site disarms itself so unwind-path code (and the
  // reopened stores) run crash-free, with only the crash flag left set.
  reg.armed.clear();
  reg.fire_on_hit = 0;
  reg.hits = 0;
  any_armed().store(false, std::memory_order_release);
  crashing().store(true, std::memory_order_release);
  return true;
}

bool CrashPoint::crash_in_progress() {
  return crashing().load(std::memory_order_acquire);
}

void CrashPoint::ResetAfterCrash() {
  Disarm();
  crashing().store(false, std::memory_order_release);
}

std::vector<std::string> CrashPoint::RegisteredSites() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return std::vector<std::string>(reg.sites.begin(), reg.sites.end());
}

}  // namespace mmlib::util
