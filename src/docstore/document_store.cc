#include "docstore/document_store.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "check/validators.h"
#include "util/strings.h"

namespace mmlib::docstore {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

Status WriteWholeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    return Status::IoError("failed writing " + path);
  }
  return Status::OK();
}

Status ValidateDocName(const std::string& name, std::string_view what) {
  return check::ValidateResourceName(name, /*allow_dot=*/true, what);
}

}  // namespace

Result<std::vector<std::string>> DocumentStore::FindByField(
    const std::string& collection, const std::string& key,
    const std::string& value) {
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids, ListIds(collection));
  std::vector<std::string> matches;
  for (const std::string& id : ids) {
    MMLIB_ASSIGN_OR_RETURN(json::Value doc, Get(collection, id));
    const json::Value* member = doc.FindMember(key);
    if (member != nullptr && member->is_string() &&
        member->as_string() == value) {
      matches.push_back(id);
    }
  }
  return matches;
}

InMemoryDocumentStore::InMemoryDocumentStore() : id_generator_(0xd0c5) {}

Result<std::string> InMemoryDocumentStore::Insert(
    const std::string& collection, json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  const std::string id = id_generator_.Next(collection);
  doc.Set("_id", id);
  collections_[collection][id] = doc.Dump();
  return id;
}

Result<json::Value> InMemoryDocumentStore::Get(const std::string& collection,
                                               const std::string& id) {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end()) {
    return Status::NotFound("no collection " + collection);
  }
  auto doc_it = coll_it->second.find(id);
  if (doc_it == coll_it->second.end()) {
    return Status::NotFound("no document " + id + " in " + collection);
  }
  return json::Parse(doc_it->second);
}

Status InMemoryDocumentStore::Delete(const std::string& collection,
                                     const std::string& id) {
  auto coll_it = collections_.find(collection);
  if (coll_it == collections_.end() || coll_it->second.erase(id) == 0) {
    return Status::NotFound("no document " + id + " in " + collection);
  }
  return Status::OK();
}

Result<std::vector<std::string>> InMemoryDocumentStore::ListIds(
    const std::string& collection) {
  std::vector<std::string> ids;
  auto coll_it = collections_.find(collection);
  if (coll_it != collections_.end()) {
    for (const auto& [id, text] : coll_it->second) {
      ids.push_back(id);
    }
  }
  return ids;
}

size_t InMemoryDocumentStore::TotalStoredBytes() const {
  size_t total = 0;
  for (const auto& [name, docs] : collections_) {
    for (const auto& [id, text] : docs) {
      total += text.size();
    }
  }
  return total;
}

size_t InMemoryDocumentStore::DocumentCount() const {
  size_t count = 0;
  for (const auto& [name, docs] : collections_) {
    count += docs.size();
  }
  return count;
}

PersistentDocumentStore::PersistentDocumentStore(std::string root)
    : root_(std::move(root)), id_generator_(0xd15c) {}

Result<std::unique_ptr<PersistentDocumentStore>> PersistentDocumentStore::Open(
    const std::string& root) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create " + root + ": " + ec.message());
  }
  return std::unique_ptr<PersistentDocumentStore>(
      new PersistentDocumentStore(root));
}

Result<std::string> PersistentDocumentStore::PathFor(
    const std::string& collection, const std::string& id) const {
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  MMLIB_RETURN_IF_ERROR(ValidateDocName(id, "document id"));
  return root_ + "/" + collection + "/" + id + ".json";
}

Result<std::string> PersistentDocumentStore::Insert(
    const std::string& collection, json::Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  std::error_code ec;
  std::filesystem::create_directories(root_ + "/" + collection, ec);
  if (ec) {
    return Status::IoError("cannot create collection dir: " + ec.message());
  }
  const std::string id = id_generator_.Next(collection);
  doc.Set("_id", id);
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  MMLIB_RETURN_IF_ERROR(WriteWholeFile(path, doc.Dump()));
  return id;
}

Result<json::Value> PersistentDocumentStore::Get(const std::string& collection,
                                                 const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  MMLIB_ASSIGN_OR_RETURN(std::string content, ReadWholeFile(path));
  return json::Parse(content);
}

Status PersistentDocumentStore::Delete(const std::string& collection,
                                       const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(std::string path, PathFor(collection, id));
  std::error_code ec;
  if (!std::filesystem::remove(path, ec) || ec) {
    return Status::NotFound("no document " + id + " in " + collection);
  }
  return Status::OK();
}

Result<std::vector<std::string>> PersistentDocumentStore::ListIds(
    const std::string& collection) {
  std::vector<std::string> ids;
  MMLIB_RETURN_IF_ERROR(ValidateDocName(collection, "collection"));
  const std::string dir = root_ + "/" + collection;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string filename = entry.path().filename().string();
    if (EndsWith(filename, ".json")) {
      ids.push_back(filename.substr(0, filename.size() - 5));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t PersistentDocumentStore::TotalStoredBytes() const {
  size_t total = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      total += entry.file_size(ec);
    }
  }
  return total;
}

size_t PersistentDocumentStore::DocumentCount() const {
  size_t count = 0;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root_, ec)) {
    if (entry.is_regular_file(ec)) {
      ++count;
    }
  }
  return count;
}

Result<std::string> RemoteDocumentStore::Insert(const std::string& collection,
                                                json::Value doc) {
  network_->Transfer(doc.Dump().size());
  return backend_->Insert(collection, std::move(doc));
}

Result<json::Value> RemoteDocumentStore::Get(const std::string& collection,
                                             const std::string& id) {
  MMLIB_ASSIGN_OR_RETURN(json::Value doc, backend_->Get(collection, id));
  network_->Transfer(doc.Dump().size());
  return doc;
}

Status RemoteDocumentStore::Delete(const std::string& collection,
                                   const std::string& id) {
  network_->Transfer(id.size());
  return backend_->Delete(collection, id);
}

Result<std::vector<std::string>> RemoteDocumentStore::ListIds(
    const std::string& collection) {
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                         backend_->ListIds(collection));
  size_t bytes = 0;
  for (const std::string& id : ids) {
    bytes += id.size();
  }
  network_->Transfer(bytes);
  return ids;
}

Result<std::vector<std::string>> RemoteDocumentStore::FindByField(
    const std::string& collection, const std::string& key,
    const std::string& value) {
  // The query executes on the database host; only the matching ids travel.
  MMLIB_ASSIGN_OR_RETURN(std::vector<std::string> ids,
                         backend_->FindByField(collection, key, value));
  size_t bytes = key.size() + value.size();
  for (const std::string& id : ids) {
    bytes += id.size();
  }
  network_->Transfer(bytes);
  return ids;
}

}  // namespace mmlib::docstore
