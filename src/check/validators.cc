#include "check/validators.h"

#include <cmath>
#include <string>

namespace mmlib::check {

namespace {

std::string WithContext(std::string_view context, std::string message) {
  if (context.empty()) {
    return message;
  }
  return std::string(context) + ": " + message;
}

}  // namespace

Status ValidateShapesMatch(const Shape& got, const Shape& want,
                           std::string_view context) {
  if (got == want) {
    return Status::OK();
  }
  return Status::InvalidArgument(WithContext(
      context, "shape mismatch: got " + got.ToString() + ", want " +
                   want.ToString()));
}

Status ValidateSameShape(const Tensor& a, const Tensor& b,
                         std::string_view context) {
  return ValidateShapesMatch(a.shape(), b.shape(), context);
}

Status ValidateRank(const Shape& shape, size_t rank,
                    std::string_view context) {
  if (shape.rank() == rank) {
    return Status::OK();
  }
  return Status::InvalidArgument(WithContext(
      context, "expected rank " + std::to_string(rank) + ", got shape " +
                   shape.ToString()));
}

Status ValidateIndex(int64_t index, int64_t size, std::string_view context) {
  if (index >= 0 && index < size) {
    return Status::OK();
  }
  return Status::OutOfRange(WithContext(
      context, "index " + std::to_string(index) + " out of range [0, " +
                   std::to_string(size) + ")"));
}

Status ValidatePositive(int64_t value, std::string_view context) {
  if (value > 0) {
    return Status::OK();
  }
  return Status::InvalidArgument(WithContext(
      context, "expected a positive value, got " + std::to_string(value)));
}

Status ValidateArity(const std::vector<const Tensor*>& inputs, size_t arity,
                     std::string_view layer_name) {
  if (inputs.size() != arity) {
    return Status::InvalidArgument(WithContext(
        layer_name, "expected " + std::to_string(arity) + " input(s), got " +
                        std::to_string(inputs.size())));
  }
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] == nullptr) {
      return Status::InvalidArgument(
          WithContext(layer_name, "input " + std::to_string(i) + " is null"));
    }
  }
  return Status::OK();
}

Status ValidateResourceName(std::string_view name, bool allow_dot,
                            std::string_view context) {
  const auto reject = [&](const std::string& why) {
    return Status::InvalidArgument(
        WithContext(context, "unsafe name \"" + std::string(name) + "\": " +
                                 why));
  };
  if (name.empty()) {
    return reject("empty");
  }
  if (name.size() > 200) {
    return reject("longer than 200 characters");
  }
  if (name == "." || name == "..") {
    return reject("reserved path component");
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    (allow_dot && c == '.');
    if (!ok) {
      return reject(std::string("disallowed character '") + c + "'");
    }
  }
  return Status::OK();
}

Status ValidateAllFinite(const Tensor& t, std::string_view context) {
  const float* data = t.data();
  const int64_t n = t.numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(data[i])) {
      return Status::InvalidArgument(WithContext(
          context, "non-finite value " + std::to_string(data[i]) +
                       " at flat index " + std::to_string(i) + " of shape " +
                       t.shape().ToString()));
    }
  }
  return Status::OK();
}

}  // namespace mmlib::check
