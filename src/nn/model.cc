#include "nn/model.h"

#include <algorithm>

#include "check/check.h"
#include "util/thread_pool.h"

namespace mmlib::nn {

int64_t Model::AddNode(std::unique_ptr<Layer> layer,
                       std::vector<int64_t> inputs) {
  MMLIB_CHECK(layer != nullptr) << "AddNode with null layer";
  for (int64_t id : inputs) {
    MMLIB_CHECK(id == kInputNode ||
                (id >= 0 && id < static_cast<int64_t>(nodes_.size())))
        << "AddNode input id " << id << " does not reference an earlier node";
  }
  nodes_.push_back(Node{std::move(layer), std::move(inputs)});
  return static_cast<int64_t>(nodes_.size()) - 1;
}

int64_t Model::AddSequential(std::unique_ptr<Layer> layer) {
  const int64_t prev =
      nodes_.empty() ? kInputNode : static_cast<int64_t>(nodes_.size()) - 1;
  return AddNode(std::move(layer), {prev});
}

Result<Tensor> Model::Forward(const Tensor& input, ExecutionContext* ctx) {
  if (nodes_.empty()) {
    return Status::FailedPrecondition("model has no layers");
  }
  input_ = input;
  activations_.assign(nodes_.size(), Tensor());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    Node& node = nodes_[i];
    std::vector<const Tensor*> inputs;
    inputs.reserve(node.inputs.size());
    for (int64_t id : node.inputs) {
      inputs.push_back(id == kInputNode ? &input_ : &activations_[id]);
    }
    auto result = node.layer->Forward(inputs, ctx);
    if (!result.ok()) {
      return result.status().WithContext("forward of node " +
                                         node.layer->name());
    }
    activations_[i] = std::move(result).value();
    if (observer_ != nullptr) {
      observer_->OnForward(node.layer->name(), activations_[i]);
    }
  }
  return activations_.back();
}

Result<Tensor> Model::Backward(const Tensor& grad_output,
                               ExecutionContext* ctx) {
  if (activations_.size() != nodes_.size()) {
    return Status::FailedPrecondition("Backward called before Forward");
  }
  // Accumulated output-gradients per node plus one slot for the model input.
  std::vector<Tensor> node_grads(nodes_.size());
  Tensor input_grad(input_.shape());
  node_grads.back() = grad_output;

  for (size_t i = nodes_.size(); i-- > 0;) {
    Node& node = nodes_[i];
    if (node_grads[i].numel() == 0) {
      // Node output is unused (cannot happen in well-formed graphs where
      // every node feeds the output); skip.
      continue;
    }
    auto result = node.layer->Backward(node_grads[i], ctx);
    if (!result.ok()) {
      return result.status().WithContext("backward of node " +
                                         node.layer->name());
    }
    std::vector<Tensor> input_grads = std::move(result).value();
    if (input_grads.size() != node.inputs.size()) {
      return Status::Internal("node " + node.layer->name() +
                              " returned wrong number of input gradients");
    }
    for (size_t k = 0; k < node.inputs.size(); ++k) {
      const int64_t id = node.inputs[k];
      Tensor& slot = id == kInputNode ? input_grad : node_grads[id];
      if (slot.numel() == 0) {
        slot = std::move(input_grads[k]);
      } else {
        slot.AddInPlace(input_grads[k]);
      }
    }
    if (observer_ != nullptr) {
      // Report the gradient flowing to the node's first input.
      const int64_t id = node.inputs.empty() ? kInputNode : node.inputs[0];
      const Tensor& g = id == kInputNode ? input_grad : node_grads[id];
      observer_->OnBackward(node.layer->name(), g);
    }
  }
  return input_grad;
}

void Model::ZeroGrad() {
  for (Node& node : nodes_) {
    node.layer->ZeroGrad();
  }
}

int64_t Model::TrainableParamCount() const {
  int64_t count = 0;
  for (const Node& node : nodes_) {
    count += node.layer->TrainableParamCount();
  }
  return count;
}

int64_t Model::TotalParamCount() const {
  int64_t count = 0;
  for (const Node& node : nodes_) {
    count += node.layer->TotalParamCount();
  }
  return count;
}

void Model::FlattenTrainableGrads(std::vector<float>* out) const {
  out->resize(static_cast<size_t>(TrainableParamCount()));
  size_t offset = 0;
  for (const Node& node : nodes_) {
    for (const Param& param : node.layer->params()) {
      if (!param.trainable || param.is_buffer) {
        continue;
      }
      const size_t count = static_cast<size_t>(param.grad.numel());
      std::copy(param.grad.data(), param.grad.data() + count,
                out->data() + offset);
      offset += count;
    }
  }
}

Status Model::LoadTrainableGrads(const std::vector<float>& flat) {
  if (flat.size() != static_cast<size_t>(TrainableParamCount())) {
    return Status::InvalidArgument(
        "gradient vector has " + std::to_string(flat.size()) +
        " elements; the model's trainable set has " +
        std::to_string(TrainableParamCount()));
  }
  size_t offset = 0;
  for (Node& node : nodes_) {
    for (Param& param : node.layer->params()) {
      if (!param.trainable || param.is_buffer) {
        continue;
      }
      const size_t count = static_cast<size_t>(param.grad.numel());
      std::copy(flat.data() + offset, flat.data() + offset + count,
                param.grad.data());
      offset += count;
    }
  }
  return Status::OK();
}

size_t Model::ParamByteSize() const {
  return static_cast<size_t>(TotalParamCount()) * sizeof(float);
}

void Model::SetTrainableAll(bool trainable) {
  for (Node& node : nodes_) {
    node.layer->SetTrainable(trainable);
  }
}

size_t Model::SetTrainableWhere(
    const std::function<bool(const Layer&)>& predicate) {
  size_t trainable_layers = 0;
  for (Node& node : nodes_) {
    const bool trainable = predicate(*node.layer);
    node.layer->SetTrainable(trainable);
    if (trainable && node.layer->HasTrainableParams()) {
      ++trainable_layers;
    }
  }
  return trainable_layers;
}

std::vector<LayerHash> Model::LayerHashes() const {
  std::vector<LayerHash> hashes;
  hashes.reserve(nodes_.size());
  for (const Node& node : nodes_) {
    hashes.push_back(LayerHash{node.layer->name(), node.layer->ParamHash()});
  }
  return hashes;
}

Result<MerkleTree> Model::BuildMerkleTree(util::ThreadPool* pool) const {
  if (pool == nullptr) {
    pool = util::ThreadPool::Global();
  }

  // Per-node hashing parallelizes badly: one huge layer (fc weights, a wide
  // conv) dominates its chunk and the build runs at the speed of the
  // largest layer. Instead, hash individual parameter tensors as work
  // items, with chunk boundaries placed by parameter byte size so every
  // chunk carries a near-equal share of the bytes. The boundaries are a
  // pure function of the model's shapes (never the thread count), and leaf
  // digests are assembled from the same per-tensor content hashes
  // ParamHash() uses, so the tree root is identical to the serial build.
  struct Item {
    size_t node;
    size_t param;
  };
  std::vector<Item> items;
  std::vector<uint64_t> prefix_bytes;  // prefix_bytes[i] = bytes before item i
  uint64_t total_bytes = 0;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    const std::vector<Param>& params = nodes_[n].layer->params();
    for (size_t p = 0; p < params.size(); ++p) {
      items.push_back(Item{n, p});
      prefix_bytes.push_back(total_bytes);
      total_bytes +=
          static_cast<uint64_t>(params[p].value.numel()) * sizeof(float);
    }
  }

  // Chunk c covers the items whose prefix byte offset falls in the c-th
  // equal slice of the total byte range.
  constexpr uint64_t kMaxHashChunks = 64;
  const uint64_t num_chunks =
      std::max<uint64_t>(1, std::min<uint64_t>(kMaxHashChunks, items.size()));
  std::vector<size_t> chunk_begin(num_chunks + 1, items.size());
  chunk_begin[0] = 0;
  for (size_t i = 0, c = 0; i < items.size(); ++i) {
    const uint64_t slice =
        total_bytes == 0
            ? i * num_chunks / items.size()
            : std::min<uint64_t>(num_chunks - 1,
                                 prefix_bytes[i] * num_chunks / total_bytes);
    while (c < slice) {
      chunk_begin[++c] = i;
    }
  }

  std::vector<std::vector<Digest>> digests(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    digests[n].resize(nodes_[n].layer->params().size());
  }
  util::ParallelFor(
      pool, static_cast<int64_t>(num_chunks), /*grain=*/1,
      [&](int64_t begin, int64_t end, size_t /*chunk_index*/) {
        for (int64_t c = begin; c < end; ++c) {
          for (size_t i = chunk_begin[static_cast<size_t>(c)];
               i < chunk_begin[static_cast<size_t>(c) + 1]; ++i) {
            const Item& item = items[i];
            digests[item.node][item.param] =
                nodes_[item.node].layer->params()[item.param].value
                    .ContentHash();
          }
        }
      });

  std::vector<Digest> leaves(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    leaves[n] = nodes_[n].layer->ParamHashWith(digests[n]);
  }
  return MerkleTree::Build(std::move(leaves));
}

Digest Model::ParamsHash() const {
  Sha256 hasher;
  for (const Node& node : nodes_) {
    const Digest d = node.layer->ParamHash();
    hasher.Update(d.bytes.data(), d.bytes.size());
  }
  return hasher.Finish();
}

Digest Model::ArchitectureFingerprint() const {
  Sha256 hasher;
  hasher.Update(architecture_name_);
  for (const Node& node : nodes_) {
    hasher.Update(node.layer->name());
    hasher.Update(node.layer->type());
    BytesWriter writer;
    writer.WriteU64(node.inputs.size());
    for (int64_t id : node.inputs) {
      writer.WriteI64(id);
    }
    for (const Param& p : node.layer->params()) {
      writer.WriteString(p.name);
      writer.WriteU64(p.value.shape().rank());
      for (int64_t d : p.value.shape().dims()) {
        writer.WriteI64(d);
      }
    }
    hasher.Update(writer.bytes());
  }
  return hasher.Finish();
}

Bytes Model::SerializeParams() const {
  BytesWriter writer;
  writer.WriteU64(nodes_.size());
  for (const Node& node : nodes_) {
    writer.WriteString(node.layer->name());
    node.layer->SerializeParams(&writer);
  }
  return writer.TakeBytes();
}

Status Model::LoadParams(const Bytes& data) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  if (count != nodes_.size()) {
    return Status::Corruption("model snapshot layer count mismatch: " +
                              std::to_string(count) + " vs " +
                              std::to_string(nodes_.size()));
  }
  for (Node& node : nodes_) {
    MMLIB_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    if (name != node.layer->name()) {
      return Status::Corruption("model snapshot layer order mismatch: " +
                                name + " vs " + node.layer->name());
    }
    MMLIB_RETURN_IF_ERROR(node.layer->DeserializeParams(&reader));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after model snapshot");
  }
  return Status::OK();
}

Bytes Model::SerializeLayerSubset(
    const std::vector<size_t>& layer_indices) const {
  BytesWriter writer;
  writer.WriteU64(layer_indices.size());
  for (size_t i : layer_indices) {
    MMLIB_CHECK_LT(i, nodes_.size()) << "SerializeLayerSubset: bad node index";
    writer.WriteString(nodes_[i].layer->name());
    nodes_[i].layer->SerializeParams(&writer);
  }
  return writer.TakeBytes();
}

Status Model::MergeLayerSubset(const Bytes& data) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader.ReadU64());
  for (uint64_t k = 0; k < count; ++k) {
    MMLIB_ASSIGN_OR_RETURN(std::string name, reader.ReadString());
    MMLIB_ASSIGN_OR_RETURN(size_t index, FindLayerIndex(name));
    MMLIB_RETURN_IF_ERROR(nodes_[index].layer->DeserializeParams(&reader));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after layer subset");
  }
  return Status::OK();
}

Result<size_t> Model::FindLayerIndex(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].layer->name() == name) {
      return i;
    }
  }
  return Status::NotFound("no layer named " + name);
}

}  // namespace mmlib::nn
