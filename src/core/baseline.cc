#include "core/baseline.h"

namespace mmlib::core {

Result<SaveResult> BaselineSaveService::DoSaveModel(const SaveRequest& request) {
  CostMeter meter(backends_);
  SaveTransaction txn(backends_);

  // Extract: serialize the full parameter snapshot and encode it as a
  // chunked frame (parallel, thread-count-independent bytes).
  Bytes params = request.model->SerializeParams();
  MMLIB_ASSIGN_OR_RETURN(Bytes encoded, EncodeParams(params));

  // Persist: parameters to the file store, metadata to the document store.
  MMLIB_ASSIGN_OR_RETURN(std::string params_file, txn.SaveFile(encoded));
  MMLIB_ASSIGN_OR_RETURN(json::Value doc, MakeModelDoc(request, txn));
  doc.Set("params_file", params_file);
  MMLIB_ASSIGN_OR_RETURN(std::string model_id,
                         txn.Insert(kModelsCollection, std::move(doc)));
  MMLIB_RETURN_IF_ERROR(txn.Commit());

  SaveResult result;
  result.model_id = model_id;
  result.tts_seconds = meter.ElapsedSeconds();
  result.storage_bytes = meter.StoredBytesDelta();
  return result;
}

}  // namespace mmlib::core
