#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simnet/network.h"
#include "simnet/retry.h"
#include "util/result.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace mmlib::collective {

/// A worker that runs `slow_factor` times slower than its peers during
/// steps [from_step, to_step] of update `update` (all step coordinates are
/// 1-based within an update; updates are numbered by RingSession::
/// BeginUpdate). While the extra time stays inside the session's bounded
/// wait the cohort absorbs it; past the bound the straggler is excluded
/// from the affected steps and rejoins (with a parameter re-sync) when the
/// window ends.
struct StragglerWindow {
  size_t worker = 0;
  double slow_factor = 4.0;
  int64_t update = 0;
  int64_t from_step = 1;
  int64_t to_step = 1;
};

/// Permanent worker loss: from step `at_step` of update `update` on, the
/// worker never participates again. The surviving cohort continues with
/// deterministically rescaled gradient weights (mean over the alive set).
struct WorkerLossEvent {
  size_t worker = 0;
  int64_t update = 0;
  int64_t at_step = 1;
};

/// Network partition: during steps [from_step, to_step] of update `update`
/// the `minority` workers are cut off from the coordinator's side. While
/// the cut-off side holds a strict majority the session stalls until the
/// partition heals; otherwise the majority continues degraded and the
/// minority rejoins (with parameter re-syncs) at the heal.
struct PartitionWindow {
  std::vector<size_t> minority;
  int64_t update = 0;
  int64_t from_step = 1;
  int64_t to_step = 1;
};

/// Tuning and fault schedule of a ring-all-reduce session. Everything is
/// keyed by (update, step) coordinates — never by the virtual clock — so a
/// crash-recovery replay of the same steps sees the exact same membership
/// decisions and the flow lands bit-identical to the crash-free run.
struct RingOptions {
  /// Elements per ring message; a reduce-scatter slice larger than this is
  /// sent in several messages. Also the ParallelFor grain of the reduction,
  /// so results are bit-identical for any chunk size and pool size.
  int64_t chunk_elements = 4096;
  /// Virtual compute seconds of one optimizer step over the full batch.
  /// Each of K workers shards 1/K of the batch, so its per-step share is
  /// step_compute_seconds / K; the cohort is charged the slowest member.
  double step_compute_seconds = 0.0;
  /// Bounded wait for a slow peer: a cohort member whose extra compute
  /// time exceeds this bound is excluded from the step instead of waited
  /// for (the survivors are charged the bound they waited).
  double straggler_wait_seconds = 1.0;
  /// Per-message retry/backoff policy of the collective channel.
  simnet::RetryPolicy retry;
  std::vector<StragglerWindow> stragglers;
  std::vector<WorkerLossEvent> losses;
  std::vector<PartitionWindow> partitions;
};

/// Per-worker robustness counters of one session.
struct RingWorkerCounters {
  /// Ring messages this worker sent (including retransmitted slices).
  uint64_t messages = 0;
  /// Steps this worker sat out (straggler exclusion, partition, loss).
  uint64_t excluded_steps = 0;
  /// Parameter re-syncs charged when the worker rejoined the ring.
  uint64_t rejoin_syncs = 0;

  bool operator==(const RingWorkerCounters& other) const {
    return messages == other.messages &&
           excluded_steps == other.excluded_steps &&
           rejoin_syncs == other.rejoin_syncs;
  }
};

/// Session-wide totals, filled as AllReduce steps run.
struct SessionReport {
  /// AllReduce steps committed.
  uint64_t steps = 0;
  /// Steps committed by a cohort smaller than the configured worker set.
  uint64_t degraded_steps = 0;
  /// Steps that had to wait out a partition before they could commit.
  uint64_t stalled_steps = 0;
  /// Collective messages retried by the session's Retrier.
  uint64_t retries = 0;
  /// Messages abandoned on the retry deadline (feeds peer removal).
  uint64_t deadline_exhausted = 0;
  /// Peers removed mid-step after their messages exhausted the retrier.
  uint64_t peers_removed = 0;
  std::vector<RingWorkerCounters> workers;
};

/// Deterministic ring all-reduce over simnet worker nodes.
///
/// The session simulates the messaging of a chunked ring all-reduce —
/// 2*(C-1) rounds over a cohort of C workers, each round moving one slice
/// of ceil(N/C) elements per worker to its right neighbour — with the
/// house fault machinery: every message is a TryTransferBetweenWorkers
/// drawn from the dedicated collective fault stream, retried under the
/// session's Retrier, and every send/reduce/commit passes a crash point
/// ("collective.send", "collective.reduce", "collective.commit").
///
/// The *arithmetic* is decoupled from the message schedule: gradients are
/// reduced in a fixed balanced binary tree over cohort ranks and scaled by
/// 1/C at the end (CommitStep). The tree is a pure function of the cohort,
/// so the result is bit-identical for any chunk size, pool size, and ring
/// topology — and for a full cohort of bit-identical replicas the mean
/// reproduces the single-worker gradient exactly (the tree sum of 2^k
/// equal values is an exponent shift, and 1/C for C in {1,2,4,8} is a
/// power of two). Degraded cohorts (3 survivors of 4) are deterministic
/// per seed but legitimately differ from the clean run.
class RingSession {
 public:
  /// Declares `workers` ring workers on `network` (ConfigureWorkers). The
  /// network must outlive the session.
  RingSession(size_t workers, RingOptions options, simnet::Network* network);

  size_t worker_count() const { return workers_; }
  const RingOptions& options() const { return options_; }

  /// Starts (or re-enters) update `update_index`: step coordinates passed
  /// to AllReduce are interpreted within this update. Re-entering the same
  /// index after a crash recovery replays membership identically.
  void BeginUpdate(int64_t update_index);
  int64_t current_update() const { return update_; }

  /// Arms a one-shot simulated kill of `worker`: crash site `site` (one of
  /// "collective.send", "collective.reduce", "collective.commit") fires at
  /// the worker's first participation in that site during step `at_step`
  /// of update `update`. The CrashException unwinds out of AllReduce; the
  /// caller restarts the worker, calls RejoinWorker, and resumes training
  /// from its checkpoint.
  void ArmWorkerCrash(std::string site, int64_t update, int64_t at_step,
                      size_t worker);

  /// Reduces the cohort's gradients to their rescaled mean: `inputs` holds
  /// one gradient vector per configured worker (excluded workers' entries
  /// are ignored; flows pass the same replica buffer for every worker) and
  /// `out` receives the mean over the alive cohort. `out` may alias an
  /// input. `step` is 1-based within the current update.
  Status AllReduce(int64_t step,
                   const std::vector<const std::vector<float>*>& inputs,
                   std::vector<float>* out);

  /// Marks `worker` freshly restarted and re-synced: charges one parameter
  /// snapshot of `param_bytes` over the ring link and clears the worker's
  /// exclusion so it participates in the next step at full weight.
  Status RejoinWorker(size_t worker, uint64_t param_bytes);

  const SessionReport& report() const { return report_; }

  /// Thread pool of the reduction; the process-wide pool when unset.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

 private:
  /// Membership of `step`: the sorted alive cohort after loss events,
  /// partitions, and straggler exclusions keyed by (update_, step).
  std::vector<size_t> CohortForStep(int64_t step, double* wait_seconds);

  /// One ring message plus its crash point; Unavailable/DeadlineExceeded
  /// after retries means the peer is gone and the step must continue
  /// without it.
  Status SendChunk(size_t from, size_t to, uint64_t bytes);
  /// The receiver folds an arrived slice into its accumulator (crash
  /// surface only; the numeric fold is CommitStep's).
  void ReduceChunk(size_t at);
  /// Step barrier: every cohort member installs the reduced gradient; then
  /// the balanced-tree fold and 1/C rescale produce `out`.
  Status CommitStep(const std::vector<size_t>& cohort,
                    const std::vector<const std::vector<float>*>& inputs,
                    std::vector<float>* out);

  /// Simulates the 2*(C-1) ring rounds over `cohort`; removes peers whose
  /// messages exhaust the retrier and restarts with the reduced cohort.
  Status RunRing(std::vector<size_t>* cohort, int64_t elements, int64_t step);

  void ChargeRejoinSync(size_t worker, uint64_t param_bytes);

  size_t workers_;
  RingOptions options_;
  simnet::Network* network_;
  simnet::Retrier retrier_;
  util::ThreadPool* pool_ = nullptr;
  int64_t update_ = 0;

  struct PendingCrash {
    bool armed = false;
    std::string site;
    int64_t update = 0;
    int64_t at_step = 0;
    size_t worker = 0;
  };
  PendingCrash pending_crash_;

  std::vector<bool> loss_applied_;      // CrashWorker issued for this loss
  std::vector<bool> partition_spent_;   // window consumed by a stall-heal
  std::vector<bool> needs_rejoin_;      // missed the previous commit
  std::vector<size_t> current_minority_;  // workers partitioned right now
  SessionReport report_;
};

}  // namespace mmlib::collective
