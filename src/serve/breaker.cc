#include "serve/breaker.h"

namespace mmlib::serve {

bool CircuitBreaker::Allow(double now_seconds) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_seconds - opened_at_seconds_ >= options_.open_seconds) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        probe_in_flight_ = true;
        ++probe_count_;
        return true;
      }
      ++fast_reject_count_;
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) {
        ++fast_reject_count_;
        return false;
      }
      probe_in_flight_ = true;
      ++probe_count_;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(double now_seconds) {
  (void)now_seconds;
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= options_.recovery_threshold) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        ++recovery_count_;
      }
      break;
    case State::kOpen:
      // A late success from a request admitted before the trip; ignore.
      break;
  }
}

void CircuitBreaker::RecordFailure(double now_seconds) {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        Trip(now_seconds);
      }
      break;
    case State::kHalfOpen:
      // The probe failed: back to open, cooldown restarts.
      probe_in_flight_ = false;
      Trip(now_seconds);
      break;
    case State::kOpen:
      break;
  }
}

void CircuitBreaker::Trip(double now_seconds) {
  state_ = State::kOpen;
  opened_at_seconds_ = now_seconds;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++trip_count_;
}

}  // namespace mmlib::serve
