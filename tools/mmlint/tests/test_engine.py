"""Engine + CLI tests: baseline round-trip, fingerprint stability, the
repo-lints-clean invariant, output formats, and the legacy shim."""

import contextlib
import io
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

from tools.mmlint import cli, engine
from tools.mmlint.findings import assign_fingerprints
from tools.mmlint.tests.util import make_context, run_token_rules

BAD_SOURCE = ("namespace m {\n"
              "int F(int x) {\n"
              "  assert(x >= 0);\n"
              "  return x;\n"
              "}\n"
              "}  // namespace m\n")


def run_cli(args):
    out, err = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
        code = cli.main(args)
    return code, out.getvalue(), err.getvalue()


class RepoCleanTest(unittest.TestCase):
    """The acceptance invariant: the shipped tree lints clean with an empty
    baseline, and crash-point coverage is total."""

    def test_repo_lints_clean(self):
        result = engine.lint()
        self.assertEqual([str(f) for f in result.findings], [])
        self.assertEqual(result.baselined, [])
        self.assertEqual(result.stale_baseline, [])
        self.assertTrue(result.ok)

    def test_coverage_is_total(self):
        result = engine.lint()
        cov = result.coverage
        self.assertGreater(cov["persistence_call_sites"], 0)
        self.assertEqual(cov["covered"], cov["persistence_call_sites"])
        self.assertEqual(cov["coverage_percent"], 100.0)
        self.assertGreater(cov["registered_crash_points"], 0)

    def test_shipped_baseline_is_empty(self):
        self.assertEqual(engine.load_baseline(), [])

    def test_subset_run_skips_whole_graph_rules(self):
        # On a file subset the call graph is partial: crash points in other
        # TUs are invisible, so coverage must not report false positives.
        result = engine.lint(paths=[str(engine.REPO_ROOT / "src" /
                                        "persist")])
        self.assertEqual([str(f) for f in result.findings], [])
        self.assertEqual(result.coverage_sites, [])
        self.assertEqual(result.coverage, {})


class FingerprintTest(unittest.TestCase):
    def fingerprint_of(self, text):
        ctx = make_context("src/core/a.cc", text)
        findings = run_token_rules([ctx])
        self.assertEqual(len(findings), 1)
        assign_fingerprints(findings, {ctx.relpath: text.splitlines()})
        return findings[0].fingerprint

    def test_stable_under_line_shift(self):
        shifted = "// one new leading comment line\n" + BAD_SOURCE
        self.assertEqual(self.fingerprint_of(BAD_SOURCE),
                         self.fingerprint_of(shifted))

    def test_changes_when_line_text_changes(self):
        edited = BAD_SOURCE.replace("x >= 0", "x > 0")
        self.assertNotEqual(self.fingerprint_of(BAD_SOURCE),
                            self.fingerprint_of(edited))

    def test_duplicate_lines_get_distinct_fingerprints(self):
        text = ("void F(int x) { assert(x); }\n"
                "void G(int x) { assert(x); }\n")
        ctx = make_context("src/core/a.cc", text)
        findings = run_token_rules([ctx])
        self.assertEqual(len(findings), 2)
        assign_fingerprints(findings, {ctx.relpath: text.splitlines()})
        self.assertNotEqual(findings[0].fingerprint,
                            findings[1].fingerprint)


class BaselineRoundTripTest(unittest.TestCase):
    def test_roundtrip_and_stale_detection(self):
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src" / "core").mkdir(parents=True)
            bad = root / "src" / "core" / "bad.cc"
            bad.write_text(BAD_SOURCE, encoding="utf-8")
            baseline = root / "baseline.json"
            bands = {"core": 0}

            first = engine.lint(root=root, baseline_path=baseline,
                                bands=bands)
            self.assertEqual([f.rule for f in first.findings], ["no-assert"])

            engine.write_baseline(first.findings, baseline)
            second = engine.lint(root=root, baseline_path=baseline,
                                 bands=bands)
            self.assertTrue(second.ok)
            self.assertEqual([f.rule for f in second.baselined],
                             ["no-assert"])
            self.assertEqual(second.stale_baseline, [])

            # Fix the debt: the baseline entry must be flagged as stale.
            bad.write_text(BAD_SOURCE.replace("assert(x >= 0);", ""),
                           encoding="utf-8")
            third = engine.lint(root=root, baseline_path=baseline,
                                bands=bands)
            self.assertTrue(third.ok)
            self.assertEqual(len(third.stale_baseline), 1)

    def test_baseline_survives_line_shift(self):
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            (root / "src" / "core").mkdir(parents=True)
            bad = root / "src" / "core" / "bad.cc"
            bad.write_text(BAD_SOURCE, encoding="utf-8")
            baseline = root / "baseline.json"
            bands = {"core": 0}

            first = engine.lint(root=root, baseline_path=baseline,
                                bands=bands)
            engine.write_baseline(first.findings, baseline)
            bad.write_text("// unrelated edit above the finding\n"
                           + BAD_SOURCE, encoding="utf-8")
            second = engine.lint(root=root, baseline_path=baseline,
                                 bands=bands)
            self.assertTrue(second.ok)
            self.assertEqual(len(second.baselined), 1)


class CliTest(unittest.TestCase):
    def test_list_rules_covers_all(self):
        code, out, _ = run_cli(["--list-rules"])
        self.assertEqual(code, 0)
        for rule_id in engine.all_rule_docs():
            self.assertIn(rule_id, out)

    def test_text_run_is_clean(self):
        code, out, _ = run_cli([])
        self.assertEqual(code, 0)
        self.assertIn("mmlint: OK", out)
        self.assertIn("crash-point coverage", out)

    def test_json_output(self):
        code, out, _ = run_cli(["--format=json"])
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertEqual(doc["findings"], [])
        self.assertEqual(doc["coverage"]["coverage_percent"], 100.0)

    def test_sarif_output(self):
        code, out, _ = run_cli(["--format=sarif"])
        self.assertEqual(code, 0)
        doc = json.loads(out)
        self.assertEqual(doc["version"], "2.1.0")
        driver = doc["runs"][0]["tool"]["driver"]
        self.assertEqual(driver["name"], "mmlint")
        self.assertGreater(len(driver["rules"]), 10)
        self.assertEqual(doc["runs"][0]["results"], [])

    def test_coverage_report(self):
        code, out, _ = run_cli(["--coverage-report"])
        self.assertEqual(code, 0)
        self.assertIn("[ok]", out)

    def test_nonexistent_path_is_usage_error(self):
        code, _, _ = run_cli(["no/such/path.cc"])
        self.assertEqual(code, 2)


class LegacyShimTest(unittest.TestCase):
    def test_tools_lint_py_still_runs(self):
        proc = subprocess.run(
            [sys.executable, str(engine.REPO_ROOT / "tools" / "lint.py"),
             "--list-rules"],
            capture_output=True, text=True, cwd=engine.REPO_ROOT)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("no-assert", proc.stdout)
        self.assertIn("deprecated", proc.stderr.lower())


if __name__ == "__main__":
    unittest.main()
