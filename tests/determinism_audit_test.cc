#include "audit/determinism_auditor.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/train_service.h"
#include "models/zoo.h"
#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "util/random.h"

namespace mmlib::audit {
namespace {

nn::Model SmallMlp(uint64_t seed = 9) {
  Rng rng(seed);
  nn::Model model("audit-mlp");
  model.AddSequential(std::make_unique<nn::Linear>("fc1", 8, 16, &rng));
  model.AddSequential(std::make_unique<nn::ReLU>("relu1"));
  model.AddSequential(std::make_unique<nn::Linear>("fc2", 16, 4, &rng));
  return model;
}

Tensor SmallInput(uint64_t seed = 5) {
  Rng rng(seed);
  return Tensor::Uniform(Shape{2, 8}, -1.0f, 1.0f, &rng);
}

// Runs one forward+backward under `auditor` with a deterministic context.
Status RunOnce(nn::Model* model, DeterminismAuditor* auditor,
               const Tensor& input, uint64_t seed = 3) {
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(seed);
  ctx.set_training(true);
  model->ZeroGrad();
  model->set_observer(auditor);
  auditor->BeginRun();
  auto run = [&]() -> Status {
    MMLIB_ASSIGN_OR_RETURN(Tensor output, model->Forward(input, &ctx));
    Tensor grad = Tensor::Full(output.shape(), 1.0f);
    return model->Backward(grad, &ctx).status();
  };
  const Status status = run();
  model->set_observer(nullptr);
  if (!status.ok()) {
    return status;
  }
  return auditor->EndRun();
}

TEST(DeterminismAuditorTest, IdenticalRunsPass) {
  nn::Model model = SmallMlp();
  const Tensor input = SmallInput();
  DeterminismAuditor auditor;
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
  EXPECT_EQ(auditor.completed_runs(), 3u);
  EXPECT_FALSE(auditor.first_divergence().has_value());
  // 3 layers, forward + backward events per run.
  EXPECT_EQ(auditor.reference_trace().size(), 6u);
}

TEST(DeterminismAuditorTest, CorruptedLayerOutputIsDetectedAtThatLayer) {
  nn::Model model = SmallMlp();
  const Tensor input = SmallInput();
  DeterminismAuditor auditor;
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());

  // Corrupt a single bias element of fc2 (the bias always reaches the
  // output; a weight element can be masked by an upstream ReLU zero): every
  // layer before fc2 still reproduces, fc2's forward output does not.
  const size_t fc2 = model.FindLayerIndex("fc2").value();
  model.layer(fc2)->params()[1].value.at(0) += 1e-3f;

  const Status status = RunOnce(&model, &auditor, input);
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  ASSERT_TRUE(auditor.first_divergence().has_value());
  const AuditDivergence& divergence = *auditor.first_divergence();
  EXPECT_EQ(divergence.layer_name, "fc2");
  EXPECT_EQ(divergence.pass, AuditEvent::Pass::kForward);
  EXPECT_EQ(divergence.run, 1u);
  // fc1 and relu1 forward events came first and matched.
  EXPECT_EQ(divergence.position, 2u);
  EXPECT_NE(status.message().find("fc2"), std::string::npos);
}

TEST(DeterminismAuditorTest, AuditDeterminismHelperPassesOnCleanModel) {
  nn::Model model = SmallMlp();
  EXPECT_TRUE(AuditDeterminism(&model, SmallInput(), /*seed=*/11,
                               /*runs=*/3)
                  .ok());
  EXPECT_FALSE(AuditDeterminism(&model, SmallInput(), 11, /*runs=*/0).ok());
}

TEST(DeterminismAuditorTest, ReferenceRootIsAStableFingerprint) {
  nn::Model a = SmallMlp();
  nn::Model b = SmallMlp();
  const Tensor input = SmallInput();
  DeterminismAuditor audit_a;
  DeterminismAuditor audit_b;
  ASSERT_TRUE(RunOnce(&a, &audit_a, input).ok());
  ASSERT_TRUE(RunOnce(&b, &audit_b, input).ok());
  // Identically seeded models on identical input: same Merkle root.
  EXPECT_EQ(audit_a.ReferenceRoot().value(), audit_b.ReferenceRoot().value());

  nn::Model c = SmallMlp(/*seed=*/10);
  DeterminismAuditor audit_c;
  ASSERT_TRUE(RunOnce(&c, &audit_c, input).ok());
  EXPECT_NE(audit_a.ReferenceRoot().value(), audit_c.ReferenceRoot().value());

  DeterminismAuditor empty;
  EXPECT_FALSE(empty.ReferenceRoot().ok());
}

TEST(DeterminismAuditorTest, ResetStartsANewReference) {
  nn::Model model = SmallMlp();
  const Tensor input = SmallInput();
  DeterminismAuditor auditor;
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
  const size_t fc1 = model.FindLayerIndex("fc1").value();
  model.layer(fc1)->params()[0].value.at(3) += 1e-5f;
  ASSERT_FALSE(RunOnce(&model, &auditor, input).ok());

  auditor.Reset();
  EXPECT_EQ(auditor.completed_runs(), 0u);
  // After Reset the perturbed model defines the new reference and passes.
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
}

TEST(DeterminismAuditorDeathTest, FatalModeAbortsOnDivergence) {
  nn::Model model = SmallMlp();
  const Tensor input = SmallInput();
  DeterminismAuditOptions options;
  options.fatal = true;
  DeterminismAuditor auditor(options);
  ASSERT_TRUE(RunOnce(&model, &auditor, input).ok());
  const size_t fc1 = model.FindLayerIndex("fc1").value();
  model.layer(fc1)->params()[0].value.at(0) += 1e-5f;
  EXPECT_DEATH((void)RunOnce(&model, &auditor, input),
               "determinism audit.*fc1");
}

// End-to-end wiring: an audited deterministic training run is reproducible
// (Fig. 13), and a corrupted replay is rejected at Train() time.
TEST(DeterminismAuditorTest, AuditedTrainingReplayDetectsCorruption) {
  core::TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 2;
  config.seed = 77;
  config.loader.batch_size = 4;
  config.loader.image_size = 28;
  config.loader.num_classes = 10;
  config.loader.seed = 77;
  data::SyntheticImageDataset dataset(data::PaperDatasetId::kCocoOutdoor512,
                                      4096);

  models::ModelConfig model_config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  model_config.channel_divisor = 8;
  model_config.image_size = 28;
  model_config.num_classes = 10;
  model_config.init_seed = 1;

  nn::Model reference_model = models::BuildModel(model_config).value();
  const Bytes initial_params = reference_model.SerializeParams();

  DeterminismAuditor auditor;
  {
    core::ImageTrainService service(&dataset, config);
    service.set_determinism_auditor(&auditor);
    ASSERT_TRUE(
        service.Train(&reference_model, /*deterministic=*/true, 0).ok());
  }
  ASSERT_EQ(auditor.completed_runs(), 1u);

  // A faithful replay from the same initial parameters matches the trace.
  {
    nn::Model replay = models::BuildModel(model_config).value();
    ASSERT_TRUE(replay.LoadParams(initial_params).ok());
    core::ImageTrainService service(&dataset, config);
    service.set_determinism_auditor(&auditor);
    auto times = service.Train(&replay, /*deterministic=*/true, 0);
    EXPECT_TRUE(times.ok()) << times.status();
  }

  // A replay whose starting state was corrupted by one element fails with
  // Corruption out of Train() itself.
  {
    nn::Model corrupted = models::BuildModel(model_config).value();
    ASSERT_TRUE(corrupted.LoadParams(initial_params).ok());
    corrupted.layer(0)->params()[0].value.at(0) += 1e-4f;
    core::ImageTrainService service(&dataset, config);
    service.set_determinism_auditor(&auditor);
    auto times = service.Train(&corrupted, /*deterministic=*/true, 0);
    ASSERT_FALSE(times.ok());
    EXPECT_EQ(times.status().code(), StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace mmlib::audit
