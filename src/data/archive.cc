#include "data/archive.h"

#include <cstring>

namespace mmlib::data {

Result<Bytes> DatasetArchiver::Archive(const Dataset& dataset) const {
  BytesWriter payload;
  payload.WriteString(dataset.name());
  payload.WriteU64(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Image image = dataset.GetImage(i);
    payload.WriteI64(image.height);
    payload.WriteI64(image.width);
    payload.WriteI64(image.label);
    payload.WriteBlob(image.pixels.data(), image.pixels.size());
  }
  const Digest content_hash = dataset.ContentHash();

  BytesWriter archive;
  archive.WriteRaw(content_hash.bytes.data(), content_hash.bytes.size());
  MMLIB_ASSIGN_OR_RETURN(Bytes framed, codec_->Frame(payload.bytes()));
  archive.WriteBlob(framed);
  return archive.TakeBytes();
}

Result<std::unique_ptr<InMemoryDataset>> DatasetArchiver::Extract(
    const Bytes& archive) {
  BytesReader reader(archive);
  Digest expected_hash;
  MMLIB_RETURN_IF_ERROR(
      reader.ReadRaw(expected_hash.bytes.data(), expected_hash.bytes.size()));
  MMLIB_ASSIGN_OR_RETURN(Bytes framed, reader.ReadBlob());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after dataset archive");
  }
  MMLIB_ASSIGN_OR_RETURN(Bytes payload, Codec::Unframe(framed));

  BytesReader body(payload);
  MMLIB_ASSIGN_OR_RETURN(std::string name, body.ReadString());
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, body.ReadU64());
  std::vector<Image> images;
  images.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Image image;
    MMLIB_ASSIGN_OR_RETURN(image.height, body.ReadI64());
    MMLIB_ASSIGN_OR_RETURN(image.width, body.ReadI64());
    MMLIB_ASSIGN_OR_RETURN(image.label, body.ReadI64());
    MMLIB_ASSIGN_OR_RETURN(image.pixels, body.ReadBlob());
    if (static_cast<int64_t>(image.pixels.size()) !=
        image.height * image.width * 3) {
      return Status::Corruption("image pixel size does not match dimensions");
    }
    images.push_back(std::move(image));
  }
  if (!body.AtEnd()) {
    return Status::Corruption("trailing bytes in dataset payload");
  }
  auto dataset =
      std::make_unique<InMemoryDataset>(std::move(name), std::move(images));
  if (dataset->ContentHash() != expected_hash) {
    return Status::Corruption("dataset content hash mismatch after extract");
  }
  return dataset;
}

}  // namespace mmlib::data
