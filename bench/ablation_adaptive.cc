/// Ablation (paper Section 4.7, "Adaptive Approach"): a heuristic that
/// picks the cheapest approach per model. Sweeps the dataset-to-model size
/// ratio and the model relation, reporting what the adaptive service chose
/// and the storage relative to the fixed approaches.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/adaptive.h"
#include "core/model_code.h"
#include "core/train_service.h"
#include "env/environment.h"

using namespace mmlib;
using namespace mmlib::bench;

namespace {

struct Scenario {
  const char* name;
  uint64_t dataset_divisor;  // larger divisor => smaller dataset
  bool partial;
};

}  // namespace

int main() {
  PrintHeader(
      "Ablation", "Adaptive approach choice (paper Section 4.7)",
      "MobileNetV2 (divisor 4, ~3.6 MB snapshot); one derived save per\n"
      "scenario. Expected: partial updates -> PUA; small datasets with\n"
      "full updates -> MPA; large datasets with full updates -> PUA/BA.");

  const models::ModelConfig model_config =
      StorageScaleModel(models::Architecture::kMobileNetV2);
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  TablePrinter table({"scenario", "dataset", "relation", "chosen",
                      "est. BA", "est. PUA", "est. MPA", "actual storage"});
  for (const Scenario scenario :
       {Scenario{"large dataset, full", 64, false},
        Scenario{"large dataset, partial", 64, true},
        Scenario{"small dataset, full", 4096, false},
        Scenario{"small dataset, partial", 4096, true},
        Scenario{"tiny dataset, full", 1 << 16, false}}) {
    auto model = models::BuildModel(model_config).value();
    if (scenario.partial) {
      models::ApplyPartialUpdateFreeze(&model);
    }
    data::SyntheticImageDataset dataset(
        data::PaperDatasetId::kCocoOutdoor512, scenario.dataset_divisor);

    Backing backing;
    core::AdaptiveSaveService service(backing.backends);
    core::SaveRequest request;
    request.model = &model;
    request.code = core::CodeDescriptorFor(model_config);
    request.environment = &environment;
    const std::string base_id =
        service.SaveModel(request).value().model_id;

    // Simulated partial/full update.
    Rng rng(scenario.dataset_divisor);
    for (size_t i = 0; i < model.node_count(); ++i) {
      for (nn::Param& param : model.layer(i)->params()) {
        if (param.trainable && !param.is_buffer) {
          for (int64_t k = 0; k < param.value.numel(); ++k) {
            param.value.at(k) += rng.NextGaussian() * 0.01f;
          }
        }
      }
    }

    core::TrainConfig train_config;
    train_config.loader.image_size = model_config.image_size;
    train_config.loader.num_classes = model_config.num_classes;
    train_config.sgd.momentum = 0.0f;
    core::ImageTrainService trainer(&dataset, train_config);
    auto provenance = trainer.CaptureProvenance().value();

    core::SaveRequest derived = request;
    derived.base_model_id = base_id;
    derived.provenance = &provenance;
    const auto save = service.SaveModel(derived).value();
    const auto& est = service.last_estimates();

    table.AddRow({scenario.name, Mb(dataset.TotalByteSize()),
                  scenario.partial ? "partial" : "full",
                  std::string(service.last_choice()), Mb(est.baseline),
                  Mb(est.param_update), Mb(est.provenance),
                  Mb(save.storage_bytes)});
  }
  table.Print(std::cout);
  return 0;
}
