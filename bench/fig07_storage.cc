/// Reproduces paper Figure 7: per-model storage consumption across use
/// cases and approaches, for (a) fully and (b) partially updated
/// MobileNetV2 versions and (c) fully / (d) partially updated ResNet-152
/// versions, trained on CF-512. U2 is excluded from the panels, as in the
/// paper (the MPA's U2 peak is dataset-driven; see Figure 9).
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

namespace {

void Panel(const char* panel_id, models::Architecture arch,
           ModelRelation relation) {
  std::printf("--- Figure 7(%s): %s, %s versions, CF-512 ---\n", panel_id,
              std::string(models::ArchitectureName(arch)).c_str(),
              std::string(RelationName(relation)).c_str());

  std::vector<std::string> headers = {"use case"};
  std::vector<FlowResult> results;
  for (ApproachKind approach : {ApproachKind::kBaseline,
                                ApproachKind::kParamUpdate,
                                ApproachKind::kProvenance}) {
    headers.push_back(std::string(ApproachName(approach)));
    FlowConfig config;
    config.approach = approach;
    config.model = StorageScaleModel(arch);
    config.relation = relation;
    config.u3_dataset = data::PaperDatasetId::kCocoFood512;
    config.dataset_divisor = MatchedDatasetDivisor(config.model);
    config.training_mode = TrainingMode::kSimulated;
    config.recover_models = false;
    results.push_back(RunFlow(config));
  }

  TablePrinter table(headers);
  for (const std::string& label : results[0].Labels()) {
    if (label == "U2") {
      continue;  // excluded from the comparison plot, as in the paper
    }
    std::vector<std::string> row = {label};
    for (const FlowResult& result : results) {
      row.push_back(Mb(result.MedianStorage(label)));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  // Headline deltas vs the baseline over the U3 use cases.
  double ba_total = 0;
  double pua_total = 0;
  double mpa_total = 0;
  for (const std::string& label : results[0].Labels()) {
    if (label == "U1" || label == "U2") {
      continue;
    }
    ba_total += static_cast<double>(results[0].MedianStorage(label));
    pua_total += static_cast<double>(results[1].MedianStorage(label));
    mpa_total += static_cast<double>(results[2].MedianStorage(label));
  }
  std::printf("U3 storage vs BA:  PUA %s   MPA %s\n\n",
              Pct(pua_total / ba_total - 1.0).c_str(),
              Pct(mpa_total / ba_total - 1.0).c_str());
}

}  // namespace

int main() {
  PrintHeader("Figure 7", "Storage consumption across approaches",
              "Simulated model updates (paper: pre-trained snapshots); "
              "storage excludes the base model.\nPaper headline numbers: "
              "partially updated PUA -63.7% (MobileNetV2) / -95.6% "
              "(ResNet-152); MPA -70% for fully updated ResNet-152.");
  Panel("a", models::Architecture::kMobileNetV2,
        ModelRelation::kFullyUpdated);
  Panel("b", models::Architecture::kMobileNetV2,
        ModelRelation::kPartiallyUpdated);
  Panel("c", models::Architecture::kResNet152, ModelRelation::kFullyUpdated);
  Panel("d", models::Architecture::kResNet152,
        ModelRelation::kPartiallyUpdated);
  return 0;
}
