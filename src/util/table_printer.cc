#include "util/table_printer.h"

#include "util/strings.h"

namespace mmlib {

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << PadRight(cells[c], widths[c]);
    }
    os << " |\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
}

}  // namespace mmlib
