# Empty dependencies file for fig10_tts.
# This may be replaced when dependencies are built.
