#include "core/adaptive.h"

#include "core/fetch.h"

namespace mmlib::core {

AdaptiveSaveService::AdaptiveSaveService(StorageBackends backends,
                                         AdaptiveOptions options)
    : SaveService(backends),
      options_(options),
      baseline_(backends),
      param_update_(backends),
      provenance_service_(backends, options.provenance) {}

Result<size_t> AdaptiveSaveService::EstimateUpdateBytes(
    const SaveRequest& request) {
  MMLIB_ASSIGN_OR_RETURN(
      json::Value base_doc,
      backends_.docs->Get(kModelsCollection, request.base_model_id));
  MMLIB_ASSIGN_OR_RETURN(std::string merkle_file,
                         base_doc.GetString("merkle_file"));
  MMLIB_ASSIGN_OR_RETURN(
      MerkleTree base_tree,
      FetchDecoded(backends_.files, merkle_file, [](Bytes bytes) {
        return MerkleTree::Deserialize(bytes);
      }));
  MMLIB_ASSIGN_OR_RETURN(MerkleTree tree, request.model->BuildMerkleTree());
  MMLIB_ASSIGN_OR_RETURN(MerkleDiff diff, MerkleTree::Diff(base_tree, tree));

  size_t bytes = 0;
  for (size_t index : diff.changed_leaves) {
    bytes += static_cast<size_t>(
                 request.model->layer(index)->TotalParamCount()) *
             sizeof(float);
  }
  return bytes;
}

Result<SaveResult> AdaptiveSaveService::DoSaveModel(const SaveRequest& request) {
  if (request.model == nullptr) {
    return Status::InvalidArgument("SaveRequest requires a model");
  }
  if (request.base_model_id.empty()) {
    // Initial models are full snapshots under every approach; use the PUA
    // path so the Merkle tree needed by later updates is persisted.
    last_choice_ = param_update_.approach();
    last_estimates_ = Estimates{};
    return param_update_.SaveModel(request);
  }

  last_estimates_.baseline = request.model->ParamByteSize();
  auto update_estimate = EstimateUpdateBytes(request);
  last_estimates_.param_update = update_estimate.ok()
                                     ? update_estimate.value()
                                     : last_estimates_.baseline;
  const bool has_provenance = request.provenance != nullptr &&
                              request.provenance->dataset != nullptr;
  last_estimates_.provenance =
      has_provenance ? request.provenance->dataset->TotalByteSize() : 0;

  SaveService* chosen = &param_update_;
  double best = static_cast<double>(last_estimates_.param_update);
  if (static_cast<double>(last_estimates_.baseline) < best) {
    chosen = &baseline_;
    best = static_cast<double>(last_estimates_.baseline);
  }
  if (has_provenance) {
    const double mpa_cost = static_cast<double>(last_estimates_.provenance) *
                            options_.mpa_recover_penalty;
    if (mpa_cost < best) {
      chosen = &provenance_service_;
      best = mpa_cost;
    }
  }
  last_choice_ = chosen->approach();
  return chosen->SaveModel(request);
}

}  // namespace mmlib::core
