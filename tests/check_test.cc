#include "check/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "check/validators.h"
#include "tensor/validate.h"
#include "nn/loss.h"
#include "tensor/tensor.h"
#include "util/result.h"

namespace mmlib {
namespace {

// ---------------------------------------------------------------- MMLIB_CHECK

TEST(CheckTest, PassingCheckHasNoEffect) {
  MMLIB_CHECK(1 + 1 == 2);
  MMLIB_CHECK(true) << "message is not evaluated on success";
  MMLIB_CHECK_EQ(4, 4);
  MMLIB_CHECK_NE(4, 5);
  MMLIB_CHECK_LT(1, 2);
  MMLIB_CHECK_LE(2, 2);
  MMLIB_CHECK_GT(3, 2);
  MMLIB_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAbortsWithConditionText) {
  EXPECT_DEATH(MMLIB_CHECK(1 == 2), "MMLIB_CHECK failed.*1 == 2");
}

TEST(CheckDeathTest, StreamedContextAppearsInMessage) {
  const int x = 41;
  EXPECT_DEATH(MMLIB_CHECK(x == 42) << "x was " << x,
               "MMLIB_CHECK failed.*x == 42.*x was 41");
}

TEST(CheckDeathTest, CheckOpPrintsBothOperands) {
  const int lhs = 3;
  const int rhs = 7;
  EXPECT_DEATH(MMLIB_CHECK_EQ(lhs, rhs), "lhs == rhs.*3 vs 7");
  EXPECT_DEATH(MMLIB_CHECK_LT(rhs, lhs), "rhs < lhs.*7 vs 3");
}

TEST(CheckTest, SuccessDoesNotEvaluateStreamedOperands) {
  int evaluations = 0;
  auto count = [&]() {
    ++evaluations;
    return 0;
  };
  MMLIB_CHECK(true) << "side effect " << count();
  EXPECT_EQ(evaluations, 0);
}

// --------------------------------------------------------------- MMLIB_DCHECK

TEST(CheckTest, DcheckConditionNotEvaluatedWhenDisabled) {
  int evaluations = 0;
  auto probe = [&]() {
    ++evaluations;
    return true;
  };
  MMLIB_DCHECK(probe());
  EXPECT_EQ(evaluations, kDCheckEnabled ? 1 : 0);
}

TEST(CheckDeathTest, DcheckMatchesBuildMode) {
  if (kDCheckEnabled) {
    EXPECT_DEATH(MMLIB_DCHECK(false), "MMLIB_DCHECK failed");
    EXPECT_DEATH(MMLIB_DCHECK_EQ(1, 2), "MMLIB_DCHECK_EQ failed");
  } else {
    // Compiled out: must be a no-op in release builds.
    MMLIB_DCHECK(false);
    MMLIB_DCHECK_EQ(1, 2);
  }
}

// ------------------------------------------------------- Result enforcement

TEST(CheckDeathTest, ValueOnErrorResultAborts) {
  Result<int> error = Status::NotFound("missing thing");
  EXPECT_DEATH(error.value(), "value\\(\\) on error Result.*missing thing");
}

TEST(CheckDeathTest, ResultFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>(Status::OK()),
               "Result constructed from OK status");
}

// ------------------------------------------------------------------ validators

TEST(ValidatorsTest, ShapesMatch) {
  EXPECT_TRUE(check::ValidateShapesMatch(Shape{2, 3}, Shape{2, 3}, "t").ok());
  const Status mismatch =
      check::ValidateShapesMatch(Shape{2, 3}, Shape{3, 2}, "merge");
  EXPECT_EQ(mismatch.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(mismatch.message().find("[2, 3]"), std::string::npos);
  EXPECT_NE(mismatch.message().find("[3, 2]"), std::string::npos);
  EXPECT_NE(mismatch.message().find("merge"), std::string::npos);
}

TEST(ValidatorsTest, SameShapeComparesTensors) {
  Tensor a(Shape{2, 2});
  Tensor b(Shape{2, 2});
  Tensor c(Shape{4});
  EXPECT_TRUE(check::ValidateSameShape(a, b, "t").ok());
  EXPECT_FALSE(check::ValidateSameShape(a, c, "t").ok());
}

TEST(ValidatorsTest, RankEdgeCases) {
  EXPECT_TRUE(check::ValidateRank(Shape{}, 0, "scalar").ok());
  EXPECT_TRUE(check::ValidateRank(Shape{1, 2, 3, 4}, 4, "nchw").ok());
  EXPECT_EQ(check::ValidateRank(Shape{1}, 2, "matrix").code(),
            StatusCode::kInvalidArgument);
}

TEST(ValidatorsTest, IndexBounds) {
  EXPECT_TRUE(check::ValidateIndex(0, 1, "i").ok());
  EXPECT_TRUE(check::ValidateIndex(9, 10, "i").ok());
  EXPECT_EQ(check::ValidateIndex(10, 10, "i").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(check::ValidateIndex(-1, 10, "i").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(check::ValidateIndex(0, 0, "i").code(), StatusCode::kOutOfRange);
}

TEST(ValidatorsTest, Positive) {
  EXPECT_TRUE(check::ValidatePositive(1, "n").ok());
  EXPECT_FALSE(check::ValidatePositive(0, "n").ok());
  EXPECT_FALSE(check::ValidatePositive(-3, "n").ok());
}

TEST(ValidatorsTest, AllFiniteAcceptsNormalValues) {
  Tensor t(Shape{2, 2}, {0.0f, -1.5f, 3.25f, 1e30f});
  EXPECT_TRUE(check::ValidateAllFinite(t, "weights").ok());
  EXPECT_TRUE(check::ValidateAllFinite(Tensor(), "empty").ok());
}

TEST(ValidatorsTest, AllFiniteReportsFirstOffendingIndex) {
  Tensor t(Shape{4}, {1.0f, 2.0f, std::nanf(""), 4.0f});
  const Status status = check::ValidateAllFinite(t, "logits");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("flat index 2"), std::string::npos);

  Tensor inf(Shape{2}, {std::numeric_limits<float>::infinity(), 0.0f});
  EXPECT_FALSE(check::ValidateAllFinite(inf, "grad").ok());
}

TEST(ValidatorsTest, ArityCountsAndNullChecksInputs) {
  Tensor t(Shape{1});
  const std::vector<const Tensor*> one = {&t};
  const std::vector<const Tensor*> two = {&t, &t};
  const std::vector<const Tensor*> with_null = {&t, nullptr};
  EXPECT_TRUE(check::ValidateArity(one, 1, "relu").ok());
  EXPECT_TRUE(check::ValidateArity(two, 2, "add").ok());
  EXPECT_FALSE(check::ValidateArity(two, 1, "relu").ok());
  EXPECT_FALSE(check::ValidateArity({}, 1, "relu").ok());
  EXPECT_FALSE(check::ValidateArity(with_null, 2, "add").ok());
}

TEST(ValidatorsTest, ResourceNames) {
  EXPECT_TRUE(check::ValidateResourceName("model-7_v2", false, "id").ok());
  EXPECT_TRUE(check::ValidateResourceName("doc.json", true, "id").ok());
  EXPECT_FALSE(check::ValidateResourceName("doc.json", false, "id").ok());
  EXPECT_FALSE(check::ValidateResourceName("", false, "id").ok());
  EXPECT_FALSE(check::ValidateResourceName("..", true, "id").ok());
  EXPECT_FALSE(check::ValidateResourceName(".", true, "id").ok());
  EXPECT_FALSE(check::ValidateResourceName("a/b", true, "id").ok());
  EXPECT_FALSE(
      check::ValidateResourceName(std::string(201, 'a'), false, "id").ok());
}

// The validators back the module boundaries: a malformed call must produce a
// Status, not UB. Exercise one real call path per adopting module.
TEST(ValidatorsTest, AdoptedAtModuleBoundaries) {
  Tensor bad_logits(Shape{2, 3}, {1.0f, 2.0f, 3.0f,
                                  std::nanf(""), 5.0f, 6.0f});
  EXPECT_FALSE(nn::SoftmaxCrossEntropy(bad_logits, {0, 1}).ok());
}

}  // namespace
}  // namespace mmlib
