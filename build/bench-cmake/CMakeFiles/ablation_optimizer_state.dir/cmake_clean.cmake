file(REMOVE_RECURSE
  "../bench/ablation_optimizer_state"
  "../bench/ablation_optimizer_state.pdb"
  "CMakeFiles/ablation_optimizer_state.dir/ablation_optimizer_state.cc.o"
  "CMakeFiles/ablation_optimizer_state.dir/ablation_optimizer_state.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimizer_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
