#pragma once

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace mmlib::simnet {

/// Bandwidth/latency cost model of one network link.
struct Link {
  double bandwidth_bytes_per_second = 12.5e9;  // 100 Gbit/s InfiniBand
  double latency_seconds = 2e-6;

  /// Time to move `bytes` over this link (one message).
  double TransferSeconds(uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// The paper's evaluation link: 100G InfiniBand.
  static Link InfiniBand100G() { return Link{}; }

  /// A constrained uplink, e.g. a vehicle's cellular connection — the
  /// motivating scenario where saving bytes matters most (Section 1).
  static Link Cellular50M() { return Link{6.25e6, 30e-3}; }
};

/// Simulated network shared by the hosts of a distributed evaluation flow.
/// Every transfer advances a virtual clock and is accounted, so experiments
/// are deterministic and instantaneous regardless of modeled data volume.
class Network {
 public:
  explicit Network(Link link) : link_(link) {}
  Network() : Network(Link::InfiniBand100G()) {}

  const Link& link() const { return link_; }

  /// Charges one message of `bytes` to the virtual clock; returns the
  /// transfer time in seconds.
  double Transfer(uint64_t bytes);

  /// Total simulated time spent in transfers.
  double TotalTransferSeconds() const { return clock_.NowSeconds(); }

  /// Total bytes moved.
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Number of messages sent.
  uint64_t MessageCount() const { return message_count_; }

  void Reset();

 private:
  Link link_;
  VirtualClock clock_;
  uint64_t total_bytes_ = 0;
  uint64_t message_count_ = 0;
};

}  // namespace mmlib::simnet

