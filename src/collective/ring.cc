#include "collective/ring.h"

#include <algorithm>

#include "util/crash_point.h"

namespace mmlib::collective {

namespace {

/// Balanced binary tree fold over vals[lo..hi]: a pure function of the
/// index range, so the reduction order depends only on the cohort — never
/// on ring position, chunking, or thread count. For 2^k equal addends the
/// sum is an exact exponent shift, which is what makes the full-cohort
/// mean reproduce the single-worker gradient bit for bit.
float TreeFold(const float* vals, size_t lo, size_t hi) {
  if (lo == hi) {
    return vals[lo];
  }
  const size_t mid = lo + (hi - lo) / 2;
  return TreeFold(vals, lo, mid) + TreeFold(vals, mid + 1, hi);
}

constexpr size_t kNoWorker = static_cast<size_t>(-1);

}  // namespace

RingSession::RingSession(size_t workers, RingOptions options,
                         simnet::Network* network)
    : workers_(workers),
      options_(std::move(options)),
      network_(network),
      retrier_(options_.retry, network) {
  network_->ConfigureWorkers(workers_);
  loss_applied_.assign(options_.losses.size(), false);
  partition_spent_.assign(options_.partitions.size(), false);
  needs_rejoin_.assign(workers_, false);
  report_.workers.assign(workers_, RingWorkerCounters{});
}

void RingSession::BeginUpdate(int64_t update_index) {
  update_ = update_index;
}

void RingSession::ArmWorkerCrash(std::string site, int64_t update,
                                 int64_t at_step, size_t worker) {
  pending_crash_.armed = true;
  pending_crash_.site = std::move(site);
  pending_crash_.update = update;
  pending_crash_.at_step = at_step;
  pending_crash_.worker = worker;
}

std::vector<size_t> RingSession::CohortForStep(int64_t step,
                                               double* wait_seconds) {
  *wait_seconds = 0.0;
  // Permanent losses active at (update_, step). The alive predicate is a
  // pure function of the step coordinates, so a crash-recovery replay of
  // this step sees the identical cohort; the network-side CrashWorker is
  // guarded to fire once.
  std::vector<bool> lost(workers_, false);
  for (size_t i = 0; i < options_.losses.size(); ++i) {
    const WorkerLossEvent& loss = options_.losses[i];
    const bool active = update_ > loss.update ||
                        (update_ == loss.update && step >= loss.at_step);
    if (!active || loss.worker >= workers_) {
      continue;
    }
    lost[loss.worker] = true;
    if (!loss_applied_[i]) {
      loss_applied_[i] = true;
      if (network_->IsWorkerUp(loss.worker)) {
        (void)network_->CrashWorker(loss.worker);
      }
    }
  }

  // Partition windows active at (update_, step); overlapping minorities
  // are merged into one cut-off group.
  auto active_partitions = [&]() {
    std::vector<size_t> active;
    for (size_t i = 0; i < options_.partitions.size(); ++i) {
      const PartitionWindow& window = options_.partitions[i];
      if (!partition_spent_[i] && window.update == update_ &&
          step >= window.from_step && step <= window.to_step) {
        active.push_back(i);
      }
    }
    return active;
  };
  auto apply_partitions = [&](const std::vector<size_t>& active) {
    std::vector<size_t> minority;
    for (size_t i : active) {
      for (size_t worker : options_.partitions[i].minority) {
        if (worker < workers_ &&
            std::find(minority.begin(), minority.end(), worker) ==
                minority.end()) {
          minority.push_back(worker);
        }
      }
    }
    std::sort(minority.begin(), minority.end());
    if (minority != current_minority_) {
      if (minority.empty()) {
        network_->HealWorkers();
      } else {
        (void)network_->PartitionWorkers({minority});
      }
      current_minority_ = minority;
    }
  };
  std::vector<size_t> active = active_partitions();
  apply_partitions(active);

  auto reachable_cohort = [&]() {
    std::vector<size_t> cohort;
    for (size_t w = 0; w < workers_; ++w) {
      if (!lost[w] && network_->IsWorkerReachable(w)) {
        cohort.push_back(w);
      }
    }
    return cohort;
  };
  std::vector<size_t> cohort = reachable_cohort();

  // Partition stall: when the coordinator's side lacks a strict majority
  // it cannot commit — it waits out the partition (idle time charged for
  // the steps the window still covers), the partition heals, and the full
  // cohort commits this step. The consumed windows never re-partition.
  // Losses are permanent, so a majority lost to crashes (not partitions)
  // continues degraded instead of stalling forever.
  if (!active.empty() && cohort.size() * 2 <= workers_) {
    int64_t heal_step = step;
    for (size_t i : active) {
      heal_step = std::max(heal_step, options_.partitions[i].to_step);
      partition_spent_[i] = true;
    }
    const double share =
        workers_ > 0 ? options_.step_compute_seconds / workers_ : 0.0;
    *wait_seconds += static_cast<double>(heal_step - step + 1) * share;
    ++report_.stalled_steps;
    apply_partitions({});
    cohort = reachable_cohort();
  }

  // Straggler windows: a cohort member whose extra compute exceeds the
  // bounded wait is excluded from this step; the survivors are charged the
  // bound they waited before giving up on it.
  const double share =
      workers_ > 0 ? options_.step_compute_seconds / workers_ : 0.0;
  double slowest = cohort.empty() ? 0.0 : share;
  bool waited_out = false;
  std::vector<size_t> included;
  for (size_t w : cohort) {
    double factor = 1.0;
    for (const StragglerWindow& window : options_.stragglers) {
      if (window.worker == w && window.update == update_ &&
          step >= window.from_step && step <= window.to_step) {
        factor = std::max(factor, window.slow_factor);
      }
    }
    const double extra = share * (factor - 1.0);
    if (extra > options_.straggler_wait_seconds) {
      waited_out = true;
      continue;
    }
    slowest = std::max(slowest, share * factor);
    included.push_back(w);
  }
  *wait_seconds += slowest;
  if (waited_out) {
    *wait_seconds += options_.straggler_wait_seconds;
  }
  return included;
}

Status RingSession::SendChunk(size_t from, size_t to, uint64_t bytes) {
  MMLIB_CRASH_POINT("collective.send");
  ++report_.workers[from].messages;
  return retrier_.Run([&]() -> Status {
    return network_->TryTransferBetweenWorkers(from, to, bytes).status;
  });
}

void RingSession::ReduceChunk(size_t at) {
  // The receiver folds the arrived slice into its accumulator. The fold
  // itself runs once, canonically, in CommitStep — this is the crash
  // surface of the per-worker reduction work.
  MMLIB_CRASH_POINT("collective.reduce");
  (void)at;
}

Status RingSession::RunRing(std::vector<size_t>* cohort, int64_t elements,
                            int64_t step) {
  (void)step;
  for (;;) {
    const size_t size = cohort->size();
    if (size < 2) {
      return Status::OK();
    }
    const int64_t slice =
        (elements + static_cast<int64_t>(size) - 1) /
        static_cast<int64_t>(size);
    const int64_t per_message =
        options_.chunk_elements > 0 ? options_.chunk_elements : slice;
    size_t failed = kNoWorker;
    const size_t rounds = 2 * (size - 1);
    for (size_t round = 0; round < rounds && failed == kNoWorker; ++round) {
      const bool reduce_phase = round < size - 1;
      for (size_t rank = 0; rank < size; ++rank) {
        const size_t from = (*cohort)[rank];
        const size_t to = (*cohort)[(rank + 1) % size];
        int64_t remaining = slice;
        while (remaining > 0) {
          const int64_t chunk = std::min(per_message, remaining);
          const Status status =
              SendChunk(from, to, static_cast<uint64_t>(chunk) * 4);
          if (!status.ok()) {
            failed = to;
            break;
          }
          remaining -= chunk;
        }
        if (failed != kNoWorker) {
          break;
        }
        if (reduce_phase) {
          ReduceChunk(to);
        }
      }
    }
    if (failed == kNoWorker) {
      return Status::OK();
    }
    // The peer's messages exhausted the retrier: give up on it for this
    // step (bounded wait already charged by the backoff ladder) and rerun
    // the ring over the surviving cohort. Deterministic per seed — the
    // fault stream decides which message dies, not wall time.
    cohort->erase(std::find(cohort->begin(), cohort->end(), failed));
    ++report_.peers_removed;
  }
}

Status RingSession::CommitStep(
    const std::vector<size_t>& cohort,
    const std::vector<const std::vector<float>*>& inputs,
    std::vector<float>* out) {
  for (size_t rank = 0; rank < cohort.size(); ++rank) {
    // Step barrier: each cohort member installs the reduced gradient.
    MMLIB_CRASH_POINT("collective.commit");
  }
  const size_t size = cohort.size();
  const std::vector<float>& first = *inputs[cohort[0]];
  const int64_t elements = static_cast<int64_t>(first.size());
  out->resize(first.size());
  const float inverse = 1.0f / static_cast<float>(size);
  const int64_t grain =
      options_.chunk_elements > 0 ? options_.chunk_elements : elements;
  util::ParallelFor(
      pool_, elements, grain,
      [&](int64_t begin, int64_t end, size_t /*chunk*/) {
        std::vector<float> vals(size);
        for (int64_t j = begin; j < end; ++j) {
          for (size_t r = 0; r < size; ++r) {
            vals[r] = (*inputs[cohort[r]])[static_cast<size_t>(j)];
          }
          (*out)[static_cast<size_t>(j)] =
              TreeFold(vals.data(), 0, size - 1) * inverse;
        }
      });
  return Status::OK();
}

Status RingSession::AllReduce(
    int64_t step, const std::vector<const std::vector<float>*>& inputs,
    std::vector<float>* out) {
  if (workers_ == 0) {
    return Status::FailedPrecondition("ring session has no workers");
  }
  if (inputs.size() != workers_) {
    return Status::InvalidArgument(
        "AllReduce needs one gradient vector per configured worker: got " +
        std::to_string(inputs.size()) + " for " + std::to_string(workers_) +
        " workers");
  }
  for (const std::vector<float>* input : inputs) {
    if (input == nullptr || input->size() != inputs[0]->size()) {
      return Status::InvalidArgument(
          "AllReduce gradient vectors must be non-null and equally sized");
    }
  }

  double wait_seconds = 0.0;
  std::vector<size_t> cohort = CohortForStep(step, &wait_seconds);
  if (cohort.empty()) {
    return Status::Unavailable("no alive workers in the ring at step " +
                               std::to_string(step));
  }

  // One-shot simulated kill: arm the site at the target worker's first
  // participation in it this step. An absent (already dead) worker cannot
  // be killed; a one-worker cohort has no send/reduce traffic to die in.
  if (pending_crash_.armed && pending_crash_.update == update_ &&
      pending_crash_.at_step == step) {
    const auto it =
        std::find(cohort.begin(), cohort.end(), pending_crash_.worker);
    const bool messaging_site = pending_crash_.site != "collective.commit";
    if (it != cohort.end() && !(messaging_site && cohort.size() < 2)) {
      const size_t rank = static_cast<size_t>(it - cohort.begin());
      const size_t size = cohort.size();
      // Sends and commits hit in rank order; in a reduce round the
      // receiver of rank r's slice is rank r+1, so the worker's first
      // reduce hit comes one position earlier.
      const uint64_t hit = pending_crash_.site == "collective.reduce"
                               ? ((rank + size - 1) % size) + 1
                               : rank + 1;
      util::CrashPoint::Arm(pending_crash_.site, hit);
    }
    pending_crash_.armed = false;
  }

  const uint64_t sync_bytes = inputs[0]->size() * 4;
  for (size_t w : cohort) {
    if (needs_rejoin_[w]) {
      ChargeRejoinSync(w, sync_bytes);
    }
  }
  if (wait_seconds > 0.0) {
    network_->ChargeSeconds(wait_seconds);
  }

  MMLIB_RETURN_IF_ERROR(RunRing(&cohort, static_cast<int64_t>(
                                             inputs[0]->size()), step));
  if (cohort.empty()) {
    return Status::Unavailable("every ring peer failed at step " +
                               std::to_string(step));
  }
  MMLIB_RETURN_IF_ERROR(CommitStep(cohort, inputs, out));

  ++report_.steps;
  if (cohort.size() < workers_) {
    ++report_.degraded_steps;
  }
  for (size_t w = 0; w < workers_; ++w) {
    const bool committed =
        std::find(cohort.begin(), cohort.end(), w) != cohort.end();
    if (!committed) {
      ++report_.workers[w].excluded_steps;
      needs_rejoin_[w] = true;
    }
  }
  report_.retries = retrier_.retry_count();
  report_.deadline_exhausted = retrier_.deadline_exhausted_count();
  return Status::OK();
}

Status RingSession::RejoinWorker(size_t worker, uint64_t param_bytes) {
  if (worker >= workers_) {
    return Status::InvalidArgument("worker " + std::to_string(worker) +
                                   " is not part of the ring");
  }
  if (!network_->IsWorkerUp(worker)) {
    return Status::FailedPrecondition(
        "worker " + std::to_string(worker) +
        " must be restarted before it can rejoin the ring");
  }
  ChargeRejoinSync(worker, param_bytes);
  return Status::OK();
}

void RingSession::ChargeRejoinSync(size_t worker, uint64_t param_bytes) {
  // A rejoining worker pulls the current parameter snapshot from a peer
  // over the ring link before it may contribute gradients again — the
  // step-barrier re-entry the flow's crash recovery relies on.
  network_->Transfer(param_bytes);
  ++report_.workers[worker].rejoin_syncs;
  needs_rejoin_[worker] = false;
}

}  // namespace mmlib::collective
