file(REMOVE_RECURSE
  "../bench/table2_models"
  "../bench/table2_models.pdb"
  "CMakeFiles/table2_models.dir/table2_models.cc.o"
  "CMakeFiles/table2_models.dir/table2_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
