#include "util/scratch_pool.h"

#include <utility>

namespace mmlib::util {

namespace {

/// Round requests up so slightly different tile sizes share pool entries.
constexpr size_t kSizeQuantum = 1024;

size_t QuantizeSize(size_t floats) {
  return (floats + kSizeQuantum - 1) / kSizeQuantum * kSizeQuantum;
}

}  // namespace

ScratchPool::Lease::Lease(ScratchPool* pool, AlignedBuffer buffer)
    : pool_(pool), buffer_(std::move(buffer)) {}

ScratchPool::Lease::~Lease() {
  if (pool_ != nullptr && !buffer_.empty()) {
    pool_->Release(std::move(buffer_));
  }
}

ScratchPool::Lease::Lease(Lease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      buffer_(std::move(other.buffer_)) {}

ScratchPool::Lease& ScratchPool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr && !buffer_.empty()) {
      pool_->Release(std::move(buffer_));
    }
    pool_ = std::exchange(other.pool_, nullptr);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

ScratchPool::Lease ScratchPool::Acquire(size_t min_floats) {
  const size_t want = QuantizeSize(min_floats == 0 ? 1 : min_floats);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // Best fit: a small request must not consume a large buffer another
    // phase of the same plan is about to ask for — first fit would force a
    // fresh allocation of the large size on every call.
    size_t best = free_.size();
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size() >= want &&
          (best == free_.size() || free_[i].size() < free_[best].size())) {
        best = i;
      }
    }
    if (best != free_.size()) {
      AlignedBuffer buffer = std::move(free_[best]);
      free_.erase(free_.begin() + static_cast<ptrdiff_t>(best));
      retained_bytes_ -= buffer.size() * sizeof(float);
      ++reused_;
      return Lease(this, std::move(buffer));
    }
    ++allocated_;
  }
  return Lease(this, AlignedBuffer(want));
}

size_t ScratchPool::allocated_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return allocated_;
}

size_t ScratchPool::reused_acquires() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reused_;
}

size_t ScratchPool::trimmed_buffers() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trimmed_;
}

size_t ScratchPool::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_bytes_;
}

void ScratchPool::Release(AlignedBuffer buffer) {
  std::lock_guard<std::mutex> lock(mutex_);
  retained_bytes_ += buffer.size() * sizeof(float);
  free_.push_back(std::move(buffer));
  TrimLocked();
}

void ScratchPool::TrimLocked() {
  // Largest-first: for scratch, the common steady state is one working set
  // of sizes cycling through the pool; an oversized straggler from a
  // one-off shape is the buffer least likely to be reused and the most
  // expensive to keep.
  while (retained_bytes_ > max_retained_bytes_ && !free_.empty()) {
    size_t largest = 0;
    for (size_t i = 1; i < free_.size(); ++i) {
      if (free_[i].size() > free_[largest].size()) {
        largest = i;
      }
    }
    retained_bytes_ -= free_[largest].size() * sizeof(float);
    free_.erase(free_.begin() + static_cast<ptrdiff_t>(largest));
    ++trimmed_;
  }
}

}  // namespace mmlib::util
