#pragma once

#include <string>
#include <vector>

#include "nn/layer.h"

namespace mmlib::nn {

/// Max pooling over NCHW inputs.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::string name, int64_t kernel_size, int64_t stride,
            int64_t padding = 0);

  std::string_view type() const override { return "maxpool2d"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  int64_t kernel_size_;
  int64_t stride_;
  int64_t padding_;
  Shape input_shape_;
  std::vector<int64_t> argmax_;  // flat input index per output element
};

/// Windowed average pooling over NCHW inputs (zero-padded borders count
/// toward the divisor, matching count_include_pad semantics).
class AvgPool2d : public Layer {
 public:
  AvgPool2d(std::string name, int64_t kernel_size, int64_t stride,
            int64_t padding = 0);

  std::string_view type() const override { return "avgpool2d"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  int64_t kernel_size_;
  int64_t stride_;
  int64_t padding_;
  Shape input_shape_;
};

/// Global average pooling: [N, C, H, W] -> [N, C].
class GlobalAvgPool : public Layer {
 public:
  explicit GlobalAvgPool(std::string name) : Layer(std::move(name)) {}

  std::string_view type() const override { return "global_avg_pool"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

 private:
  Shape input_shape_;
};

}  // namespace mmlib::nn

