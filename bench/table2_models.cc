/// Reproduces paper Table 2: the model architectures with their trainable
/// parameter counts, partially-updated parameter counts, and sizes. Built at
/// full scale (channel divisor 1), where the counts must match the paper
/// exactly.
#include <cstdio>

#include "bench/bench_common.h"
#include "models/zoo.h"

using namespace mmlib;
using namespace mmlib::models;

int main() {
  bench::PrintHeader("Table 2", "Model architectures (full scale)",
                     "#Params / partially-updated params must equal the "
                     "paper exactly.");

  TablePrinter table({"name", "#params", "paper #params", "part. updated",
                      "paper part.", "size", "paper size"});
  bool all_match = true;
  for (const Table2Row& row : Table2Reference()) {
    const Architecture arch = ArchitectureFromName(row.name).value();
    auto model = BuildModel(FullScaleConfig(arch)).value();
    const int64_t params = model.TrainableParamCount();
    const int64_t partial = ApplyPartialUpdateFreeze(&model);
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%.1f MB",
                  params * 4.0 / 1e6);
    char paper_size[32];
    std::snprintf(paper_size, sizeof(paper_size), "%.1f MB", row.size_mb);
    table.AddRow({row.name, std::to_string(params),
                  std::to_string(row.params), std::to_string(partial),
                  std::to_string(row.partially_updated_params), size_buf,
                  paper_size});
    all_match = all_match && params == row.params &&
                partial == row.partially_updated_params;
  }
  table.Print(std::cout);
  std::printf("\nParameter counts match paper Table 2: %s\n",
              all_match ? "YES (exact)" : "NO");
  return all_match ? 0 : 1;
}
