#include "util/clock.h"

namespace mmlib {

uint64_t WallClock::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

WallClock* WallClock::Get() {
  static WallClock* instance = new WallClock();
  return instance;
}

}  // namespace mmlib
