#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "collective/ring.h"
#include "compress/codec.h"
#include "core/recover.h"
#include "core/save_service.h"
#include "core/train_service.h"
#include "data/dataset.h"
#include "models/zoo.h"
#include "repl/replicated_store.h"
#include "repl/scrubber.h"
#include "simnet/network.h"

namespace mmlib::dist {

/// Which save/recover approach a flow exercises.
enum class ApproachKind {
  kBaseline,
  kParamUpdate,
  kProvenance,
  kAdaptive,
};

std::string_view ApproachName(ApproachKind kind);

/// The model relations of paper Section 2.1 exercised by the evaluation.
enum class ModelRelation {
  kFullyUpdated,
  kPartiallyUpdated,
};

std::string_view RelationName(ModelRelation relation);

/// How derived models are produced in a flow run.
enum class TrainingMode {
  /// Actually run the TrainService (deterministic); required whenever MPA
  /// models will be recovered.
  kReal,
  /// Deterministically perturb the trainable parameters instead of training
  /// — the flow analogue of the paper's pre-trained snapshots ("we train the
  /// models before the actual experiments and load them from snapshots",
  /// Section 4.1). Storage and TTS are unaffected; only use with recovery
  /// disabled for provenance chains.
  kSimulated,
};

/// One scheduled node failure: kill `node` during its `iteration`-th U3
/// update of `phase`, at the top of optimizer step `at_step` (1-based), so
/// exactly `at_step - 1` steps complete before the kill. The flow then
/// restarts the node, recovers its last durably saved base model, and
/// Resume()s the interrupted update from its latest checkpoint — landing
/// bit-identically on the uninterrupted result.
struct NodeCrashEvent {
  int phase = 1;
  int iteration = 1;
  int node = 0;
  int64_t at_step = 1;
  /// Crash site. "train.step" (the default) kills the node's training loop
  /// at the top of step `at_step`. The collective sites "collective.send",
  /// "collective.reduce", and "collective.commit" instead kill ring worker
  /// `worker` at its first participation in that site during the step's
  /// all-reduce — mid-collective. The flow then restarts the worker,
  /// re-syncs it into the ring (RingSession::RejoinWorker), and Resume()s
  /// the update from its latest checkpoint; the flow result is
  /// bit-identical to the crash-free run. Collective sites require
  /// FlowConfig::data_parallel_workers >= 1.
  std::string site = "train.step";
  /// Ring worker killed by a collective-site event; ignored for
  /// "train.step".
  int worker = 0;
};

/// Configuration of one evaluation flow (paper Sections 4.1 and 4.6).
struct FlowConfig {
  ApproachKind approach = ApproachKind::kBaseline;
  models::ModelConfig model = models::DefaultConfig(
      models::Architecture::kMobileNetV2);
  ModelRelation relation = ModelRelation::kFullyUpdated;

  /// Dataset for the node-local updates (U3): CF-512 or CO-512.
  data::PaperDatasetId u3_dataset = data::PaperDatasetId::kCocoOutdoor512;
  /// Dataset for the server update (U2): mINet-val.
  data::PaperDatasetId u2_dataset = data::PaperDatasetId::kMiniImageNetVal;
  uint64_t dataset_divisor = data::kDefaultDatasetDivisor;
  /// Codec the MPA uses to archive datasets. Flows default to identity:
  /// the paper's image datasets are JPEG-compressed already, so its
  /// "compress to a single file" step neither shrinks nor costs much —
  /// identity over our size-scaled datasets models exactly that. Set to
  /// kLz77/kLz77Huffman to study real compression (ablation_codecs).
  CodecKind dataset_codec = CodecKind::kIdentity;

  /// Number of nodes (1 = standard flow; 5/10/20 = DIST flows, Table 3).
  int num_nodes = 1;
  /// U3 iterations per phase (4 = standard flow; 10 = DIST flows).
  int u3_iterations = 4;

  /// Training configuration. Flows default to momentum-free SGD: the
  /// paper's MPA storage numbers are dataset-dominated (">99.9%" for
  /// MobileNetV2, Section 4.2), which implies no model-sized optimizer
  /// state files; momentum (and its state files) is exercised by tests and
  /// the optimizer-state ablation instead.
  core::TrainConfig train = [] {
    core::TrainConfig config;
    config.sgd.momentum = 0.0f;
    return config;
  }();
  TrainingMode training_mode = TrainingMode::kReal;

  /// Measure time-to-recover for every saved model (use case U4).
  bool recover_models = true;
  core::RecoverOptions recover_options;

  /// Checkpoint node training every this many optimizer steps (0 disables
  /// checkpointing). Checkpoints are pruned as they are superseded and the
  /// run's checkpoints are deleted once its model is durably saved, so the
  /// flow's storage measurements are unaffected.
  int64_t checkpoint_every_steps = 0;
  /// Write checkpoints through the background worker (non-blocking saves
  /// overlapping the next training steps) instead of stalling each step.
  /// Stores, records, and fault draws stay bit-identical to synchronous
  /// mode; only the virtual clock reads lower. Overridable per process via
  /// MMLIB_ASYNC_CHECKPOINTS (see core::CheckpointOptions).
  bool async_checkpoints = false;
  /// Virtual seconds of training compute per optimizer step, charged to the
  /// simnet clock (0 keeps the legacy pure-I/O clock). With this set, a
  /// synchronous checkpoint stalls compute while an async one overlaps it,
  /// and every step a crash forces training to redo costs clock time — the
  /// recovery-cost axis the checkpoint-interval sweep measures.
  double step_compute_seconds = 0.0;
  /// Scheduled node crashes. Requires TrainingMode::kReal (a simulated
  /// update has no steps to crash in) and checkpoint_every_steps >= 1.
  std::vector<NodeCrashEvent> crash_schedule;

  /// Data-parallel training (src/collective): 0 disables. When >= 1, every
  /// node-local (U3) update runs as a synchronous data-parallel job over
  /// this many ring workers: each worker is charged 1/K of the batch on the
  /// virtual clock and the gradients are synchronized with a deterministic
  /// ring all-reduce before every optimizer step. For power-of-two worker
  /// counts the flow's saved models are bit-identical to the single-worker
  /// run (balanced-tree mean, see collective::RingSession); degraded
  /// cohorts are deterministic per seed. Requires TrainingMode::kReal and a
  /// simnet network on the backends.
  int data_parallel_workers = 0;
  /// Ring tuning and fault schedule (stragglers, permanent losses, worker
  /// partitions) of the data-parallel job. step_compute_seconds == 0
  /// inherits the flow's step_compute_seconds; the collective channel's
  /// fault plan lives on the Network (set_collective_fault_plan).
  collective::RingOptions ring;

  /// Run one anti-entropy pass (repl::Scrubber::ScrubOnce) after every this
  /// many U3 iterations, and once more before U4 recovery (0 disables).
  /// Only effective when the flow's backends are replicated stores; replica
  /// crash/partition schedules themselves live on the Network
  /// (ScheduleReplicaCrash / SchedulePartition), armed before Run().
  int scrub_every_iterations = 0;
};

/// Per-model measurements collected during a flow run.
struct UseCaseRecord {
  /// "U1", "U2", "U3-1-1" ... "U3-2-<k>".
  std::string label;
  /// Node that produced the model; -1 for server models (U1, U2).
  int node = -1;
  std::string model_id;
  double tts_seconds = 0.0;
  int64_t storage_bytes = 0;
  bool recovered = false;
  double ttr_seconds = 0.0;
  core::RecoverBreakdown ttr_breakdown;
};

/// Result of one flow run.
struct FlowResult {
  std::vector<UseCaseRecord> records;

  /// Robustness counters for one node across the whole run.
  struct NodeCounters {
    /// Storage-request retries attributed to this node's U3 iterations
    /// (only counted when the backends are remote stores with a Retrier).
    uint64_t retries = 0;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
    /// Optimizer steps whose results crashes destroyed and training redid:
    /// for each crash, (completed steps before the kill) minus (the
    /// checkpoint step the node resumed from).
    uint64_t retrained_steps = 0;
  };
  /// Indexed by node; sized num_nodes for every run.
  std::vector<NodeCounters> node_counters;

  /// Degraded-mode accounting when the backends are replicated stores
  /// (empty otherwise). Indexed by replica; file- and document-side
  /// counters for the same replica are summed.
  std::vector<repl::ReplicaCounters> replica_counters;
  /// Anti-entropy totals of the flow's scrubber (all-zero when
  /// scrub_every_iterations == 0 or the backends are not replicated).
  repl::ScrubReport scrub;
  /// Transport faults injected during *this* run, by operation label
  /// ("file.load", "doc.insert", ...). Counters are reset at Run() start,
  /// so repeated flows over one network report per-flow numbers.
  std::map<std::string, simnet::FaultCounters> op_faults;
  /// Reads/writes abandoned on the fail-fast retry deadline (replicated
  /// backends only).
  uint64_t deadline_exhausted = 0;

  /// Ring all-reduce accounting when data_parallel_workers >= 1 (all-zero
  /// otherwise): committed/degraded/stalled steps, collective retries, and
  /// per-worker message/exclusion/rejoin counters, summed over every
  /// data-parallel update of the run.
  collective::SessionReport collective;

  uint64_t TotalCrashes() const;
  uint64_t TotalRestarts() const;
  uint64_t TotalRetries() const;
  uint64_t TotalRetrainedSteps() const;

  /// All distinct labels in execution order.
  std::vector<std::string> Labels() const;
  /// Median TTS across nodes for a label (paper aggregates per-use-case
  /// medians over nodes).
  double MedianTts(const std::string& label) const;
  double MedianTtr(const std::string& label) const;
  /// Storage consumption for a label (constant across nodes; returns the
  /// median for robustness).
  int64_t MedianStorage(const std::string& label) const;
  /// Total bytes across all saved models.
  int64_t TotalStorage() const;
};

/// Executes the evaluation flow: U1 (initial model to all nodes), a phase of
/// U3 iterations, U2 (server-side update), a second phase of U3 iterations,
/// and finally U4 (recover every saved model) when configured.
class EvaluationFlow {
 public:
  EvaluationFlow(FlowConfig config, core::StorageBackends backends);

  Result<FlowResult> Run();

  /// Number of models a run saves: 2 + num_nodes * 2 * u3_iterations
  /// (paper Table 3: 10 / 102 / 202 / 402).
  int ExpectedModelCount() const;

 private:
  Result<std::unique_ptr<core::SaveService>> MakeService() const;
  Result<nn::Model> CloneModel(const nn::Model& source) const;
  Status ApplyRelation(nn::Model* model) const;
  /// Produces the next model version in place (real training or simulated
  /// update); fills `provenance` (captured pre-update) when requested.
  Status UpdateModel(nn::Model* model, core::TrainService* service,
                     uint64_t update_seed,
                     core::ProvenanceData* provenance) const;

  FlowConfig config_;
  core::StorageBackends backends_;
};

}  // namespace mmlib::dist

