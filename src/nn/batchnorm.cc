#include "nn/batchnorm.h"

#include "tensor/validate.h"
#include <cmath>

namespace mmlib::nn {

BatchNorm2d::BatchNorm2d(std::string name, int64_t channels, float momentum,
                         float epsilon)
    : Layer(std::move(name)),
      channels_(channels),
      momentum_(momentum),
      epsilon_(epsilon) {
  AddParam("weight", Tensor::Full(Shape{channels}, 1.0f));
  AddParam("bias", Tensor::Zeros(Shape{channels}));
  AddParam("running_mean", Tensor::Zeros(Shape{channels}),
           /*trainable=*/false, /*is_buffer=*/true);
  AddParam("running_var", Tensor::Full(Shape{channels}, 1.0f),
           /*trainable=*/false, /*is_buffer=*/true);
}

Result<Tensor> BatchNorm2d::Forward(const std::vector<const Tensor*>& inputs,
                                    ExecutionContext* ctx) {
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 4 || x.shape().dim(1) != channels_) {
    return Status::InvalidArgument("batchnorm " + name_ +
                                   ": bad input shape " +
                                   x.shape().ToString());
  }
  cached_input_ = x;
  const int64_t batch = x.shape().dim(0);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t plane = height * width;
  const int64_t count = batch * plane;

  const float* gamma = params_[0].value.data();
  const float* beta = params_[1].value.data();
  float* running_mean = params_[2].value.data();
  float* running_var = params_[3].value.data();

  batch_mean_.assign(channels_, 0.0f);
  batch_inv_std_.assign(channels_, 0.0f);

  Tensor y(x.shape());
  for (int64_t c = 0; c < channels_; ++c) {
    float mean;
    float var;
    // A frozen batch-norm layer (fine-tuning a partially updated model
    // version) behaves as in eval mode: it uses its running statistics and
    // does not update its buffers, so frozen layers stay bit-identical
    // across training — the property the PUA's layer diff relies on.
    const bool use_batch_stats = ctx->training() && params_[0].trainable;
    if (use_batch_stats) {
      // Batch statistics in fixed (n, y, x) order: deterministic given the
      // same input batch.
      double sum = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* p = x.data() + ((n * channels_ + c) * plane);
        for (int64_t i = 0; i < plane; ++i) {
          sum += p[i];
        }
      }
      mean = static_cast<float>(sum / count);
      double var_sum = 0.0;
      for (int64_t n = 0; n < batch; ++n) {
        const float* p = x.data() + ((n * channels_ + c) * plane);
        for (int64_t i = 0; i < plane; ++i) {
          const double d = p[i] - mean;
          var_sum += d * d;
        }
      }
      var = static_cast<float>(var_sum / count);
      running_mean[c] = (1.0f - momentum_) * running_mean[c] + momentum_ * mean;
      running_var[c] = (1.0f - momentum_) * running_var[c] + momentum_ * var;
    } else {
      mean = running_mean[c];
      var = running_var[c];
    }
    const float inv_std = 1.0f / std::sqrt(var + epsilon_);
    batch_mean_[c] = mean;
    batch_inv_std_[c] = inv_std;
    const float scale = gamma[c] * inv_std;
    const float shift = beta[c] - mean * scale;
    for (int64_t n = 0; n < batch; ++n) {
      const float* p = x.data() + ((n * channels_ + c) * plane);
      float* q = y.data() + ((n * channels_ + c) * plane);
      for (int64_t i = 0; i < plane; ++i) {
        q[i] = p[i] * scale + shift;
      }
    }
  }
  return y;
}

Result<std::vector<Tensor>> BatchNorm2d::Backward(const Tensor& grad_output,
                                                  ExecutionContext* ctx) {
  (void)ctx;
  const Tensor& x = cached_input_;
  const int64_t batch = x.shape().dim(0);
  const int64_t plane = x.shape().dim(2) * x.shape().dim(3);
  const int64_t count = batch * plane;

  const float* gamma = params_[0].value.data();
  float* grad_gamma = params_[0].grad.data();
  float* grad_beta = params_[1].grad.data();

  Tensor grad_input(x.shape());
  for (int64_t c = 0; c < channels_; ++c) {
    const float mean = batch_mean_[c];
    const float inv_std = batch_inv_std_[c];
    // Accumulate per-channel sums of grad and grad*xhat.
    double sum_g = 0.0;
    double sum_gx = 0.0;
    for (int64_t n = 0; n < batch; ++n) {
      const float* p = x.data() + ((n * channels_ + c) * plane);
      const float* g = grad_output.data() + ((n * channels_ + c) * plane);
      for (int64_t i = 0; i < plane; ++i) {
        const float xhat = (p[i] - mean) * inv_std;
        sum_g += g[i];
        sum_gx += g[i] * xhat;
      }
    }
    grad_beta[c] += static_cast<float>(sum_g);
    grad_gamma[c] += static_cast<float>(sum_gx);

    const float mean_g = static_cast<float>(sum_g / count);
    const float mean_gx = static_cast<float>(sum_gx / count);
    const float scale = gamma[c] * inv_std;
    for (int64_t n = 0; n < batch; ++n) {
      const float* p = x.data() + ((n * channels_ + c) * plane);
      const float* g = grad_output.data() + ((n * channels_ + c) * plane);
      float* q = grad_input.data() + ((n * channels_ + c) * plane);
      for (int64_t i = 0; i < plane; ++i) {
        const float xhat = (p[i] - mean) * inv_std;
        q[i] = scale * (g[i] - mean_g - xhat * mean_gx);
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace mmlib::nn
