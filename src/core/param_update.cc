#include "core/param_update.h"

#include "core/fetch.h"

namespace mmlib::core {

Result<SaveResult> ParamUpdateSaveService::DoSaveModel(
    const SaveRequest& request) {
  CostMeter meter(backends_);
  SaveTransaction txn(backends_);

  // MakeModelDoc persists this model's Merkle tree so that the *next*
  // derived save can find changed layers without recovering this model.
  MerkleTree tree;
  MMLIB_ASSIGN_OR_RETURN(json::Value doc, MakeModelDoc(request, txn, &tree));

  if (request.base_model_id.empty()) {
    // Initial model: full snapshot, exactly like the baseline approach.
    Bytes params = request.model->SerializeParams();
    MMLIB_ASSIGN_OR_RETURN(Bytes encoded, EncodeParams(params));
    MMLIB_ASSIGN_OR_RETURN(std::string params_file, txn.SaveFile(encoded));
    doc.Set("params_file", params_file);
  } else {
    // Derived model: load only the base's Merkle tree and save the layers
    // whose hashes changed. The tree's serialization is self-checking, so a
    // payload damaged in flight deserializes as Corruption and is re-fetched.
    MMLIB_ASSIGN_OR_RETURN(
        json::Value base_doc,
        backends_.docs->Get(kModelsCollection, request.base_model_id));
    MMLIB_ASSIGN_OR_RETURN(std::string base_merkle_file,
                           base_doc.GetString("merkle_file"));
    MMLIB_ASSIGN_OR_RETURN(
        MerkleTree base_tree,
        FetchDecoded(
            backends_.files, base_merkle_file,
            [](Bytes bytes) { return MerkleTree::Deserialize(bytes); },
            &corruption_refetches_));
    MMLIB_ASSIGN_OR_RETURN(MerkleDiff diff,
                           MerkleTree::Diff(base_tree, tree));

    last_diff_stats_.changed_layers = diff.changed_leaves.size();
    last_diff_stats_.total_layers = tree.leaf_count();
    last_diff_stats_.merkle_comparisons = diff.comparisons;

    Bytes update =
        request.model->SerializeLayerSubset(diff.changed_leaves);
    MMLIB_ASSIGN_OR_RETURN(Bytes encoded, EncodeParams(update));
    MMLIB_ASSIGN_OR_RETURN(std::string update_file, txn.SaveFile(encoded));
    doc.Set("update_file", update_file);
  }

  MMLIB_ASSIGN_OR_RETURN(std::string model_id,
                         txn.Insert(kModelsCollection, std::move(doc)));
  MMLIB_RETURN_IF_ERROR(txn.Commit());
  SaveResult result;
  result.model_id = model_id;
  result.tts_seconds = meter.ElapsedSeconds();
  result.storage_bytes = meter.StoredBytesDelta();
  return result;
}

}  // namespace mmlib::core
