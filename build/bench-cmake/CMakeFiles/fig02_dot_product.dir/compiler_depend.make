# Empty compiler generated dependencies file for fig02_dot_product.
# This may be replaced when dependencies are built.
