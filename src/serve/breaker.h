#pragma once

#include <cstdint>

namespace mmlib::serve {

struct BreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// Virtual seconds the breaker stays open before admitting a probe.
  double open_seconds = 1.0;
  /// Consecutive probe successes in half-open that close the breaker.
  int recovery_threshold = 2;
};

/// Per-backend circuit breaker on the virtual clock, the standard
/// three-state machine:
///
///   Closed ──(failure_threshold consecutive failures)──> Open
///   Open ──(open_seconds elapsed; next Allow() admits one probe)──> HalfOpen
///   HalfOpen ──(recovery_threshold probe successes)──> Closed
///   HalfOpen ──(any probe failure)──> Open (cooldown restarts)
///
/// While open, Allow() answers false and the front end fails the request
/// fast instead of queueing work a dead backend will time out — under a
/// replica crash this is what keeps worker slots available for the backends
/// that still answer. All timing is virtual-clock seconds passed in by the
/// caller, so the state machine is deterministic per run.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerOptions& options = {})
      : options_(options) {}

  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  /// True when a request may be sent to the backend at `now_seconds`. An
  /// open breaker whose cooldown has elapsed transitions to half-open and
  /// admits exactly this one request as the probe.
  bool Allow(double now_seconds);

  /// Reports the outcome of a request that Allow() admitted.
  void RecordSuccess(double now_seconds);
  void RecordFailure(double now_seconds);

  State state() const { return state_; }
  uint64_t trip_count() const { return trip_count_; }
  uint64_t probe_count() const { return probe_count_; }
  uint64_t recovery_count() const { return recovery_count_; }
  uint64_t fast_reject_count() const { return fast_reject_count_; }

 private:
  void Trip(double now_seconds);

  BreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  /// True while the single half-open probe is in flight; further requests
  /// are rejected until its outcome lands.
  bool probe_in_flight_ = false;
  double opened_at_seconds_ = 0.0;
  uint64_t trip_count_ = 0;
  uint64_t probe_count_ = 0;
  uint64_t recovery_count_ = 0;
  uint64_t fast_reject_count_ = 0;
};

}  // namespace mmlib::serve
