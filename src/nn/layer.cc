#include "nn/layer.h"

namespace mmlib::nn {

int64_t Layer::TrainableParamCount() const {
  int64_t count = 0;
  for (const Param& p : params_) {
    if (p.trainable && !p.is_buffer) {
      count += p.value.numel();
    }
  }
  return count;
}

int64_t Layer::TotalParamCount() const {
  int64_t count = 0;
  for (const Param& p : params_) {
    count += p.value.numel();
  }
  return count;
}

void Layer::SetTrainable(bool trainable) {
  for (Param& p : params_) {
    if (!p.is_buffer) {
      p.trainable = trainable;
    }
  }
}

bool Layer::HasTrainableParams() const {
  for (const Param& p : params_) {
    if (p.trainable && !p.is_buffer) {
      return true;
    }
  }
  return false;
}

void Layer::ZeroGrad() {
  for (Param& p : params_) {
    p.grad.Fill(0.0f);
  }
}

Digest Layer::ParamHash() const {
  std::vector<Digest> digests;
  digests.reserve(params_.size());
  for (const Param& p : params_) {
    digests.push_back(p.value.ContentHash());
  }
  return ParamHashWith(digests);
}

Digest Layer::ParamHashWith(const std::vector<Digest>& param_digests) const {
  Sha256 hasher;
  for (size_t i = 0; i < params_.size(); ++i) {
    hasher.Update(params_[i].name);
    const Digest& d = param_digests[i];
    hasher.Update(d.bytes.data(), d.bytes.size());
  }
  return hasher.Finish();
}

void Layer::SerializeParams(BytesWriter* writer) const {
  writer->WriteU64(params_.size());
  for (const Param& p : params_) {
    writer->WriteString(p.name);
    p.value.SerializeTo(writer);
  }
}

Status Layer::DeserializeParams(BytesReader* reader) {
  MMLIB_ASSIGN_OR_RETURN(uint64_t count, reader->ReadU64());
  if (count != params_.size()) {
    return Status::Corruption("layer " + name_ + ": parameter count mismatch");
  }
  for (Param& p : params_) {
    MMLIB_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
    if (name != p.name) {
      return Status::Corruption("layer " + name_ + ": expected parameter " +
                                p.name + ", found " + name);
    }
    MMLIB_ASSIGN_OR_RETURN(Tensor value, Tensor::Deserialize(reader));
    if (value.shape() != p.value.shape()) {
      return Status::Corruption("layer " + name_ + ": parameter " + p.name +
                                " shape mismatch");
    }
    p.value = std::move(value);
  }
  return Status::OK();
}

size_t Layer::AddParam(std::string name, Tensor value, bool trainable,
                       bool is_buffer) {
  Param p;
  p.name = std::move(name);
  p.grad = Tensor(value.shape());
  p.value = std::move(value);
  p.trainable = trainable && !is_buffer;
  p.is_buffer = is_buffer;
  params_.push_back(std::move(p));
  return params_.size() - 1;
}

float AccumulateDot(const float* a, const float* b, size_t n,
                    bool has_fast_det_kernel, ExecutionContext* ctx) {
  return AccumulateDotKernel(a, b, n, has_fast_det_kernel,
                             ctx->deterministic(), ctx->scheduler_rng());
}

float AccumulateDotKernel(const float* a, const float* b, size_t n,
                          bool has_fast_det_kernel, bool deterministic,
                          Rng* scheduler_rng) {
  if (n == 0) {
    return 0.0f;
  }
  if (deterministic) {
    if (has_fast_det_kernel) {
      // Fixed-order plain summation; cheap and reproducible.
      return DotSerial(a, b, n);
    }
    // No fast deterministic kernel for this layer: fall back to compensated
    // summation (fixed order, extra per-element work).
    float sum = 0.0f;
    float compensation = 0.0f;
    for (size_t i = 0; i < n; ++i) {
      const float y = a[i] * b[i] - compensation;
      const float t = sum + y;
      compensation = (t - sum) - y;
      sum = t;
    }
    return sum;
  }
  // Short reductions are not worth parallelizing on a real device; they
  // stay serial (and thus deterministic) in both modes.
  constexpr size_t kMinParallelLength = 32;
  if (n < kMinParallelLength) {
    return DotSerial(a, b, n);
  }
  // Non-deterministic: the reduction is split where the scheduler happened
  // to partition the work, so association order varies between runs.
  const size_t split = 1 + static_cast<size_t>(scheduler_rng->NextBelow(n - 1));
  return DotSerial(a, b, split) + DotSerial(a + split, b + split, n - split);
}

}  // namespace mmlib::nn
