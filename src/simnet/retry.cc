#include "simnet/retry.h"

#include <cmath>

namespace mmlib::simnet {

void Retrier::ChargeBackoff(int attempt) {
  double backoff = policy_.initial_backoff_seconds *
                   std::pow(policy_.backoff_multiplier, attempt - 1);
  backoff = std::min(backoff, policy_.max_backoff_seconds);
  if (policy_.jitter_fraction > 0.0) {
    const double unit = jitter_rng_.NextDouble() * 2.0 - 1.0;  // [-1, 1)
    backoff *= 1.0 + policy_.jitter_fraction * unit;
  }
  if (network_ != nullptr) {
    network_->ChargeSeconds(backoff);
  }
}

}  // namespace mmlib::simnet
