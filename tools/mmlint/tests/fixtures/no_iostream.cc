// fixture-path: src/json/fixture_iostream.cc
#include <iostream>
#include <sstream>
#include <iostream>  // lint:allow(no-iostream)
#include <cstdio>    // lint:allow(no-iostream)
