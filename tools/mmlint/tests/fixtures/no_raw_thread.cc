// fixture-path: src/repl/fixture_thread.cc
#include <future>
#include <thread>

namespace mmlib {

void SpawnRaw() {
  std::thread t([] {});                   // finding
  t.join();
  auto f = std::async([] { return 1; });  // finding
  (void)f;
}

void SpawnAllowed() {
  std::thread t([] {});  // lint:allow(no-raw-thread)
  t.join();
}

unsigned QueryOnly() {
  return std::thread::hardware_concurrency();  // query, not a spawn
}

}  // namespace mmlib
