#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.h"

namespace mmlib::serve {

struct QueueOptions {
  /// Capacity of each per-tenant queue; arrivals beyond it are shed with
  /// ResourceExhausted. Must be >= 1 — a serving queue is bounded by
  /// definition here (see the no-unbounded-queue lint rule).
  size_t per_tenant_capacity = 64;
  /// Deficit-round-robin quantum: requests one tenant may dispatch per
  /// visit before the scheduler moves on. Keeps a hot tenant from starving
  /// the others while letting it use idle capacity.
  uint32_t drr_quantum = 4;
};

/// Admission-controlled, fair-scheduled request queues of one coordinator
/// node: one bounded FIFO per tenant, drained by deficit round robin.
///
/// Admission: a tenant's queue never grows past its capacity — the excess
/// is shed immediately, which is the load-shedding half of overload
/// robustness (reject cheap and early; never let queueing delay grow
/// unboundedly for everyone).
///
/// Scheduling: PopNext walks the tenants round-robin, topping each
/// tenant's deficit up by the quantum on every visit and dispatching while
/// deficit lasts. A tenant that floods its queue still gets only its
/// quantum per round once other tenants have backlog — per-tenant fairness
/// — while any tenant alone inherits the node's full capacity.
class TenantQueues {
 public:
  TenantQueues(uint32_t tenant_count, const QueueOptions& options);

  /// Admits `request` to its tenant's queue; false when the queue is full
  /// (the caller sheds the request).
  bool Admit(const Request& request);

  /// Next request to dispatch under DRR, or false when all queues are
  /// empty. Deterministic: depends only on the sequence of Admit/PopNext
  /// calls.
  bool PopNext(Request* out);

  /// Drops queued requests whose deadline is at or before `now_seconds`;
  /// returns them (in queue order per tenant) so the caller can account
  /// each as expired-in-queue. Sweeping at dispatch time keeps dead
  /// requests from consuming worker slots.
  std::vector<Request> ExpireBefore(double now_seconds);

  size_t TotalQueued() const;
  size_t QueuedFor(uint32_t tenant) const { return queues_[tenant].size(); }
  uint32_t tenant_count() const {
    return static_cast<uint32_t>(queues_.size());
  }

 private:
  QueueOptions options_;
  /// Bounded by options_.per_tenant_capacity (enforced in Admit) — see the
  /// no-unbounded-queue rule.
  std::vector<std::deque<Request>> queues_;
  std::vector<uint32_t> deficits_;
  /// Tenant the DRR scan resumes at.
  uint32_t cursor_ = 0;
};

}  // namespace mmlib::serve
