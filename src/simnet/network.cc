#include "simnet/network.h"

namespace mmlib::simnet {

void Network::set_fault_plan(const FaultPlan& plan) {
  fault_plan_ = plan;
  fault_rng_ = Rng(plan.seed);
  drop_count_ = 0;
  timeout_count_ = 0;
  corruption_count_ = 0;
}

double Network::Transfer(uint64_t bytes) {
  const double seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(seconds);
  total_bytes_ += bytes;
  ++message_count_;
  return seconds;
}

TransferAttempt Network::TryTransfer(uint64_t bytes) {
  TransferAttempt attempt;
  if (!fault_plan_.active()) {
    attempt.seconds = Transfer(bytes);
    return attempt;
  }
  ++message_count_;
  // One uniform draw per message keeps the fault stream's consumption a pure
  // function of the message sequence, whatever the outcome.
  const double u = fault_rng_.NextDouble();
  if (u < fault_plan_.drop_probability) {
    ++drop_count_;
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable("message dropped in flight");
    return attempt;
  }
  if (u < fault_plan_.drop_probability + fault_plan_.timeout_probability) {
    ++timeout_count_;
    attempt.seconds = fault_plan_.timeout_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::DeadlineExceeded("message timed out");
    return attempt;
  }
  attempt.seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(attempt.seconds);
  total_bytes_ += bytes;
  if (u < fault_plan_.drop_probability + fault_plan_.timeout_probability +
              fault_plan_.corrupt_probability) {
    ++corruption_count_;
    attempt.corrupted = true;
  }
  return attempt;
}

void Network::CorruptPayload(Bytes* payload) {
  if (payload == nullptr || payload->empty()) {
    return;
  }
  const size_t position = fault_rng_.NextBelow(payload->size());
  (*payload)[position] ^= static_cast<uint8_t>(1 + fault_rng_.NextBelow(255));
}

void Network::ChargeSeconds(double seconds) {
  clock_.AdvanceSeconds(seconds);
}

void Network::ConfigureNodes(size_t count) {
  node_up_.assign(count, true);
}

Status Network::CrashNode(size_t node) {
  if (node >= node_up_.size()) {
    return Status::InvalidArgument("node " + std::to_string(node) +
                                   " is not configured");
  }
  if (!node_up_[node]) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is already down");
  }
  node_up_[node] = false;
  ++crash_count_;
  clock_.AdvanceSeconds(node_costs_.crash_detect_seconds);
  return Status::OK();
}

Status Network::RestartNode(size_t node) {
  if (node >= node_up_.size()) {
    return Status::InvalidArgument("node " + std::to_string(node) +
                                   " is not configured");
  }
  if (node_up_[node]) {
    return Status::FailedPrecondition("node " + std::to_string(node) +
                                      " is already up");
  }
  node_up_[node] = true;
  ++restart_count_;
  clock_.AdvanceSeconds(node_costs_.restart_seconds);
  return Status::OK();
}

TransferAttempt Network::TryTransferToNode(size_t node, uint64_t bytes) {
  if (!IsNodeUp(node)) {
    // The sender learns nothing until its message goes unanswered; charge
    // one latency like a dropped message. No fault-rng draw: the fault
    // stream stays a pure function of the *delivered* message sequence, so
    // a crash window does not shift later fault decisions.
    TransferAttempt attempt;
    ++message_count_;
    ++down_node_reject_count_;
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable("node " + std::to_string(node) +
                                         " is down");
    return attempt;
  }
  return TryTransfer(bytes);
}

void Network::Reset() {
  clock_ = VirtualClock();
  fault_rng_ = Rng(fault_plan_.seed);
  node_up_.assign(node_up_.size(), true);
  total_bytes_ = 0;
  message_count_ = 0;
  drop_count_ = 0;
  timeout_count_ = 0;
  corruption_count_ = 0;
  crash_count_ = 0;
  restart_count_ = 0;
  down_node_reject_count_ = 0;
}

}  // namespace mmlib::simnet
