#include "core/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "core/save_txn.h"
#include "json/json.h"
#include "simnet/network.h"
#include "util/crash_point.h"

namespace mmlib::core {

namespace {

constexpr uint32_t kStateMagic = 0x4d4d434bu;  // "MMCK"
constexpr uint32_t kStateVersion = 1;

/// Binary state file: exact u64/f32 round-trips for the RNG words, which a
/// JSON double could not represent.
Bytes EncodeState(const TrainCheckpoint& checkpoint) {
  BytesWriter writer;
  writer.WriteU32(kStateMagic);
  writer.WriteU32(kStateVersion);
  writer.WriteI64(checkpoint.step);
  writer.WriteI64(checkpoint.epoch);
  writer.WriteI64(checkpoint.next_batch);
  for (uint64_t word : checkpoint.rng.s) {
    writer.WriteU64(word);
  }
  writer.WriteU8(checkpoint.rng.have_cached_gaussian ? 1 : 0);
  writer.WriteF32(checkpoint.rng.cached_gaussian);
  writer.WriteF32(checkpoint.last_loss);
  writer.WriteBlob(checkpoint.optimizer_state);
  return writer.TakeBytes();
}

Status DecodeState(const Bytes& data, TrainCheckpoint* out) {
  BytesReader reader(data);
  MMLIB_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  MMLIB_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (magic != kStateMagic || version != kStateVersion) {
    return Status::Corruption("not a checkpoint state file");
  }
  MMLIB_ASSIGN_OR_RETURN(out->step, reader.ReadI64());
  MMLIB_ASSIGN_OR_RETURN(out->epoch, reader.ReadI64());
  MMLIB_ASSIGN_OR_RETURN(out->next_batch, reader.ReadI64());
  for (uint64_t& word : out->rng.s) {
    MMLIB_ASSIGN_OR_RETURN(word, reader.ReadU64());
  }
  MMLIB_ASSIGN_OR_RETURN(uint8_t have_gaussian, reader.ReadU8());
  out->rng.have_cached_gaussian = have_gaussian != 0;
  MMLIB_ASSIGN_OR_RETURN(out->rng.cached_gaussian, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(out->last_loss, reader.ReadF32());
  MMLIB_ASSIGN_OR_RETURN(out->optimizer_state, reader.ReadBlob());
  return Status::OK();
}

}  // namespace

CheckpointManager::CheckpointManager(const StorageBackends& backends,
                                     CheckpointOptions options)
    : backends_(backends), options_(options) {
  // Suite-wide sweep hook: CI runs the whole crash matrix in both modes by
  // exporting MMLIB_ASYNC_CHECKPOINTS, without touching each test's config.
  if (const char* env = std::getenv("MMLIB_ASYNC_CHECKPOINTS")) {
    options_.async_write = env[0] == '1';
  }
}

CheckpointManager::~CheckpointManager() {
  // The worker drains queued saves before joining; a crash stashed by the
  // last save has no surviving training thread to resurface on.
  FinishInFlight();
}

Result<std::string> CheckpointManager::Write(TrainCheckpoint checkpoint) {
  if (!options_.async_write) {
    SettleCompute();
    return WriteNow(checkpoint);
  }
  // Kill window before the snapshot leaves the training thread: nothing of
  // this checkpoint is durable, the previous save may or may not be.
  MMLIB_CRASH_POINT("checkpoint.enqueue");
  MMLIB_RETURN_IF_ERROR(AwaitInFlight());
  SettleCompute();
  SubmitCheckpointSave(std::move(checkpoint));
  return std::string("checkpoint-async-pending");
}

void CheckpointManager::SubmitCheckpointSave(TrainCheckpoint checkpoint) {
  worker_.Submit([this, snapshot = std::move(checkpoint)]() {
    simnet::Network* network = backends_.network;
    const double start_seconds =
        network != nullptr ? network->TotalTransferSeconds() : 0.0;
    try {
      const Result<std::string> written = WriteNow(snapshot);
      if (!written.ok()) {
        std::lock_guard<std::mutex> lock(async_mu_);
        if (async_status_.ok()) {
          async_status_ = written.status();
        }
      }
    } catch (const util::CrashException&) {
      // A simulated kill landed mid-async-save. Leave the stores exactly as
      // the kill would (SaveTransaction already skipped rollback) and carry
      // the exception back to the training thread, which rethrows it at the
      // next Write/Drain — the moment the "process" observes its own death.
      std::lock_guard<std::mutex> lock(async_mu_);
      pending_crash_ = std::current_exception();
    }
    if (network != nullptr) {
      std::lock_guard<std::mutex> lock(async_mu_);
      unabsorbed_save_seconds_ +=
          network->TotalTransferSeconds() - start_seconds;
    }
  });
}

Status CheckpointManager::AwaitInFlight() {
  worker_.Drain();
  std::exception_ptr crash;
  Status status;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    crash = std::exchange(pending_crash_, nullptr);
    status = std::exchange(async_status_, Status::OK());
  }
  if (crash != nullptr) {
    std::rethrow_exception(crash);
  }
  return status;
}

void CheckpointManager::SettleCompute() {
  // Worker is quiet here (every settle point runs after AwaitInFlight/Drain
  // on the calling thread), so this is effectively single-threaded; the
  // lock pairs with the worker's writes for the memory model.
  double charge = 0.0;
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    const double overlap =
        std::min(pending_compute_seconds_, unabsorbed_save_seconds_);
    charge = pending_compute_seconds_ - overlap;
    overlapped_seconds_ += overlap;
    pending_compute_seconds_ = 0.0;
    // A save's idle remainder (save longer than the compute it overlapped)
    // is already-elapsed time; it cannot absorb future windows.
    unabsorbed_save_seconds_ = 0.0;
  }
  if (charge > 0.0 && backends_.network != nullptr) {
    backends_.network->ChargeSeconds(charge);
  }
}

void CheckpointManager::ChargeCompute(double seconds) {
  if (seconds <= 0.0) {
    return;
  }
  std::lock_guard<std::mutex> lock(async_mu_);
  pending_compute_seconds_ += seconds;
}

Status CheckpointManager::Drain() {
  Status status = AwaitInFlight();
  SettleCompute();
  return status;
}

void CheckpointManager::FinishInFlight() {
  worker_.Drain();
  {
    std::lock_guard<std::mutex> lock(async_mu_);
    pending_crash_ = nullptr;
    async_status_ = Status::OK();
  }
  // The steps that raced the save did run before the kill; their compute
  // stays on the clock (recovery will redo them — that is the cost being
  // measured).
  SettleCompute();
}

double CheckpointManager::overlapped_seconds() const {
  std::lock_guard<std::mutex> lock(async_mu_);
  return overlapped_seconds_;
}

Result<std::string> CheckpointManager::WriteNow(
    const TrainCheckpoint& checkpoint) {
  SaveTransaction txn(backends_);
  MMLIB_CRASH_POINT("checkpoint.write");
  MMLIB_ASSIGN_OR_RETURN(std::string params_file,
                         txn.SaveFile(checkpoint.model_params));
  MMLIB_ASSIGN_OR_RETURN(std::string state_file,
                         txn.SaveFile(EncodeState(checkpoint)));
  json::Value doc = json::Value::MakeObject();
  doc.Set("kind", "checkpoint");
  doc.Set("run_id", checkpoint.run_id);
  doc.Set("step", checkpoint.step);
  doc.Set("params_file", params_file);
  doc.Set("state_file", state_file);
  MMLIB_ASSIGN_OR_RETURN(std::string doc_id,
                         txn.Insert(kCheckpointsCollection, std::move(doc)));
  MMLIB_RETURN_IF_ERROR(txn.Commit());
  ++checkpoints_written_;

  if (options_.prune_previous) {
    // Older checkpoints of the run are superseded the moment the new one is
    // durable. Pruning after the commit is crash-safe in the lazy sense: a
    // kill mid-prune leaves stale-but-complete checkpoints that the next
    // prune or DeleteRun removes, never a dangling latest.
    MMLIB_ASSIGN_OR_RETURN(
        std::vector<std::string> ids,
        backends_.docs->FindByField(kCheckpointsCollection, "run_id",
                                    checkpoint.run_id));
    for (const std::string& id : ids) {
      if (id != doc_id) {
        MMLIB_RETURN_IF_ERROR(DeleteCheckpointDoc(id));
      }
    }
  }
  return doc_id;
}

Status CheckpointManager::DeleteCheckpointDoc(const std::string& doc_id) {
  MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                         backends_.docs->Get(kCheckpointsCollection, doc_id));
  MMLIB_ASSIGN_OR_RETURN(std::string params_file,
                         doc.GetString("params_file"));
  MMLIB_ASSIGN_OR_RETURN(std::string state_file, doc.GetString("state_file"));
  for (const std::string& file_id : {params_file, state_file}) {
    const Status status = backends_.files->Delete(file_id);
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      return status;
    }
  }
  return backends_.docs->Delete(kCheckpointsCollection, doc_id);
}

Result<bool> CheckpointManager::LoadLatest(const std::string& run_id,
                                           TrainCheckpoint* out) {
  // An in-flight async save may hold the run's newest step; reads see it or
  // they would resume from a stale checkpoint the synchronous run would
  // never have picked.
  MMLIB_RETURN_IF_ERROR(Drain());
  MMLIB_ASSIGN_OR_RETURN(
      std::vector<std::string> ids,
      backends_.docs->FindByField(kCheckpointsCollection, "run_id", run_id));
  std::string best_id;
  int64_t best_step = -1;
  for (const std::string& id : ids) {
    MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                           backends_.docs->Get(kCheckpointsCollection, id));
    MMLIB_ASSIGN_OR_RETURN(int64_t step, doc.GetInt("step"));
    if (step > best_step) {
      best_step = step;
      best_id = id;
    }
  }
  if (best_id.empty()) {
    return false;
  }
  MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                         backends_.docs->Get(kCheckpointsCollection, best_id));
  MMLIB_ASSIGN_OR_RETURN(std::string params_file,
                         doc.GetString("params_file"));
  MMLIB_ASSIGN_OR_RETURN(std::string state_file, doc.GetString("state_file"));
  out->run_id = run_id;
  MMLIB_ASSIGN_OR_RETURN(out->model_params,
                         backends_.files->LoadFile(params_file));
  MMLIB_ASSIGN_OR_RETURN(Bytes state, backends_.files->LoadFile(state_file));
  MMLIB_RETURN_IF_ERROR(DecodeState(state, out));
  return true;
}

Status CheckpointManager::DeleteRun(const std::string& run_id) {
  MMLIB_RETURN_IF_ERROR(Drain());
  MMLIB_ASSIGN_OR_RETURN(
      std::vector<std::string> ids,
      backends_.docs->FindByField(kCheckpointsCollection, "run_id", run_id));
  for (const std::string& id : ids) {
    MMLIB_RETURN_IF_ERROR(DeleteCheckpointDoc(id));
  }
  return Status::OK();
}

}  // namespace mmlib::core
