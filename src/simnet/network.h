#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/status.h"

namespace mmlib::simnet {

/// Bandwidth/latency cost model of one network link.
struct Link {
  double bandwidth_bytes_per_second = 12.5e9;  // 100 Gbit/s InfiniBand
  double latency_seconds = 2e-6;

  /// Time to move `bytes` over this link (one message).
  double TransferSeconds(uint64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// The paper's evaluation link: 100G InfiniBand.
  static Link InfiniBand100G() { return Link{}; }

  /// A constrained uplink, e.g. a vehicle's cellular connection — the
  /// motivating scenario where saving bytes matters most (Section 1).
  static Link Cellular50M() { return Link{6.25e6, 30e-3}; }
};

/// Deterministic failure model for the simulated network: every message
/// draws one uniform sample from a seeded Rng and either succeeds, is
/// dropped (transient Unavailable), times out (DeadlineExceeded, charged
/// `timeout_seconds` of virtual time), or arrives with a corrupted payload.
/// The draw sequence depends only on the order of Transfer calls — the
/// save/recover pipeline issues them serially — so the exact same faults
/// fire on every run with the same seed, at any thread-pool size.
struct FaultPlan {
  /// Probability a message is lost in flight (receiver never sees it).
  /// Charged link latency only.
  double drop_probability = 0.0;
  /// Probability a message exceeds its deadline. Charged `timeout_seconds`.
  double timeout_probability = 0.0;
  /// Probability a delivered payload is damaged in flight. Charged the full
  /// transfer time; the payload has one deterministic byte flipped.
  double corrupt_probability = 0.0;
  /// Virtual time consumed by a timed-out message before the sender gives
  /// up on it.
  double timeout_seconds = 0.5;
  /// Seed of the fault-decision stream.
  uint64_t seed = 0x5eedfa17;

  bool active() const {
    return drop_probability > 0.0 || timeout_probability > 0.0 ||
           corrupt_probability > 0.0;
  }
};

/// Per-kind fault tally. Kept both globally, per operation type (see
/// Network::OpScope), and per storage replica, so a multi-flow experiment
/// can attribute faults to one flow and one operation instead of reading a
/// counter that is cumulative across the whole process.
struct FaultCounters {
  uint64_t drops = 0;
  uint64_t timeouts = 0;
  uint64_t corruptions = 0;

  uint64_t Total() const { return drops + timeouts + corruptions; }

  bool operator==(const FaultCounters& other) const {
    return drops == other.drops && timeouts == other.timeouts &&
           corruptions == other.corruptions;
  }
};

/// Virtual-time cost of node lifecycle events. Detection models the failure
/// detector noticing a dead peer; restart models reboot plus process
/// start-up before the node serves again.
struct NodeCosts {
  double crash_detect_seconds = 0.05;
  double restart_seconds = 0.5;
};

/// Outcome of one message attempt under the active fault plan.
struct TransferAttempt {
  /// OK, Unavailable (dropped), or DeadlineExceeded (timed out).
  Status status = Status::OK();
  /// True when the message was delivered but its payload was damaged in
  /// flight. Only meaningful when `status` is OK.
  bool corrupted = false;
  /// Virtual time charged for this attempt.
  double seconds = 0.0;
};

/// Replica node id meaning "not bound to a simulated replica" (clients that
/// model a store without per-replica lifecycle).
inline constexpr size_t kNoReplica = static_cast<size_t>(-1);

/// Simulated network shared by the hosts of a distributed evaluation flow.
/// Every transfer advances a virtual clock and is accounted, so experiments
/// are deterministic and instantaneous regardless of modeled data volume.
///
/// Two independent node spaces exist: *participant nodes* (the training
/// nodes of a DIST flow, ConfigureNodes) and *replica nodes* (the storage
/// replicas of mmlib::repl, ConfigureReplicas). Replica nodes additionally
/// support partition groups, per-replica fault plans with independent
/// fault-decision streams, and crash/partition schedules driven by the
/// virtual clock.
class Network {
 public:
  explicit Network(Link link) : link_(link), fault_rng_(FaultPlan{}.seed) {}
  Network() : Network(Link::InfiniBand100G()) {}

  const Link& link() const { return link_; }

  /// Installs a failure model and reseeds the fault stream; replaces any
  /// previous plan. Pass a default-constructed FaultPlan to disable faults.
  void set_fault_plan(const FaultPlan& plan);
  const FaultPlan& fault_plan() const { return fault_plan_; }

  /// Charges one message of `bytes` to the virtual clock; returns the
  /// transfer time in seconds. Never fails — the fault-free cost-model path
  /// used by callers that only model bandwidth (benchmarks, stats queries).
  double Transfer(uint64_t bytes);

  /// Attempts one message of `bytes` under the fault plan. On success
  /// charges the transfer time; a drop charges latency only; a timeout
  /// charges `timeout_seconds`. With no active plan this is exactly
  /// Transfer.
  TransferAttempt TryTransfer(uint64_t bytes);

  /// Deterministically flips one byte of `payload` (no-op when empty);
  /// called by remote-store clients when TryTransfer reports corruption on
  /// a payload-carrying response.
  void CorruptPayload(Bytes* payload);

  /// Advances the virtual clock without sending a message — models a sender
  /// waiting out a retry backoff.
  void ChargeSeconds(double seconds);

  /// --- Per-operation fault attribution. ---
  /// Scoped label naming the storage operation whose messages are in
  /// flight; faults that fire while a scope is open are also tallied under
  /// its label (PerOpFaultCounters). Scopes nest; the innermost label wins.
  class OpScope {
   public:
    OpScope(Network* network, const char* op) : network_(network) {
      if (network_ != nullptr) {
        previous_ = network_->current_op_;
        network_->current_op_ = op;
      }
    }
    ~OpScope() {
      if (network_ != nullptr) {
        network_->current_op_ = previous_;
      }
    }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    Network* network_;
    const char* previous_ = nullptr;
  };

  /// Fault tallies per operation label since the last
  /// ResetFaultCounters/set_fault_plan/Reset.
  const std::map<std::string, FaultCounters>& PerOpFaultCounters() const {
    return per_op_faults_;
  }

  /// --- Request-deadline propagation (serving front end, src/serve). ---
  /// Scoped absolute virtual-clock deadline of the request whose backend
  /// work is in flight. While a scope is open, every Retrier on this network
  /// abandons an operation whose deadline is already hopeless instead of
  /// walking the full backoff ladder — the client has given up, so the work
  /// is wasted either way. Scopes nest; the innermost (tightest-owning)
  /// deadline wins. 0 means "no deadline".
  class DeadlineScope {
   public:
    DeadlineScope(Network* network, double deadline_seconds)
        : network_(network) {
      if (network_ != nullptr) {
        previous_ = network_->request_deadline_seconds_;
        network_->request_deadline_seconds_ = deadline_seconds;
      }
    }
    ~DeadlineScope() {
      if (network_ != nullptr) {
        network_->request_deadline_seconds_ = previous_;
      }
    }
    DeadlineScope(const DeadlineScope&) = delete;
    DeadlineScope& operator=(const DeadlineScope&) = delete;

   private:
    Network* network_;
    double previous_ = 0.0;
  };

  /// Absolute virtual-clock deadline of the in-flight request; 0 when no
  /// DeadlineScope is open.
  double RequestDeadlineSeconds() const { return request_deadline_seconds_; }

  /// True when a request deadline is set and the virtual clock has passed
  /// it — any further backend work for this request is already wasted.
  bool RequestDeadlineExpired() const {
    return request_deadline_seconds_ > 0.0 &&
           clock_.NowSeconds() >= request_deadline_seconds_;
  }

  /// Zeroes every fault counter — global, per-operation, and per-replica —
  /// without touching the virtual clock, the fault plans, or the
  /// fault-decision streams. Flows call this on entry so their reported
  /// fault accounting is per-flow, not cumulative across an experiment run.
  void ResetFaultCounters();

  /// --- Node lifecycle (crash-tolerant distributed flows). ---
  /// Declares `count` participant nodes, all up. Replaces previous state.
  void ConfigureNodes(size_t count);
  size_t NodeCount() const { return node_up_.size(); }

  /// True when `node` is configured and currently up.
  bool IsNodeUp(size_t node) const {
    return node < node_up_.size() && node_up_[node];
  }

  /// Kills a node: charges the failure-detection time and marks the node
  /// down, so messages to it fail Unavailable (feeding the Retrier).
  /// InvalidArgument for an unconfigured node, FailedPrecondition when
  /// already down.
  Status CrashNode(size_t node);

  /// Brings a crashed node back: charges the restart time and marks the
  /// node up. InvalidArgument / FailedPrecondition mirror CrashNode.
  Status RestartNode(size_t node);

  void set_node_costs(const NodeCosts& costs) { node_costs_ = costs; }
  const NodeCosts& node_costs() const { return node_costs_; }

  /// Attempts one message of `bytes` addressed to `node`. While the node is
  /// down the message fails Unavailable after one latency charge — the
  /// sender's Retrier backs off and retries until the node restarts (or its
  /// attempts run out). An up node behaves exactly like TryTransfer.
  TransferAttempt TryTransferToNode(size_t node, uint64_t bytes);

  /// --- Replica nodes (replicated storage, mmlib::repl). ---
  /// Declares `count` storage replicas, all up, all reachable (group 0),
  /// with no per-replica fault plans. Replaces previous replica state and
  /// drops any scheduled replica events.
  void ConfigureReplicas(size_t count);
  size_t ReplicaCount() const { return replicas_.size(); }

  /// Installs an independent failure model for one replica's link. The
  /// replica draws fault decisions from its own stream seeded by
  /// `plan.seed`, so faults on one replica never shift another replica's
  /// fault sequence. Pass an inactive plan to fall back to the global plan.
  Status SetReplicaFaultPlan(size_t replica, const FaultPlan& plan);

  bool IsReplicaUp(size_t replica) const {
    return replica < replicas_.size() && replicas_[replica].up;
  }

  /// True when the replica is up and in the coordinator's partition group
  /// (group 0) — i.e. a client request can reach it right now.
  bool IsReplicaReachable(size_t replica) const {
    return replica < replicas_.size() && replicas_[replica].up &&
           replicas_[replica].group == 0;
  }

  /// True when two distinct replicas can talk to each other: both up and in
  /// the same partition group (anti-entropy sessions need this).
  bool ReplicaPairReachable(size_t a, size_t b) const {
    return a < replicas_.size() && b < replicas_.size() && a != b &&
           replicas_[a].up && replicas_[b].up &&
           replicas_[a].group == replicas_[b].group;
  }

  /// Kills / restarts a replica; charges the node costs like
  /// CrashNode/RestartNode. Errors mirror the participant-node variants.
  Status CrashReplica(size_t replica);
  Status RestartReplica(size_t replica);

  /// Splits the replicas into partition groups: `groups[i]` lists the
  /// replicas cut off into group i+1; replicas not listed stay in group 0,
  /// the side the flow coordinator is on. Messages across group boundaries
  /// fail Unavailable after one latency charge. InvalidArgument when a
  /// replica id is unconfigured or listed twice.
  Status Partition(const std::vector<std::vector<size_t>>& groups);

  /// Heals all partitions: every replica rejoins group 0.
  void Heal();

  /// --- Replica event schedule (virtual clock). ---
  /// Queues a crash/restart/partition/heal to fire once the virtual clock
  /// reaches `at_seconds`. Due events are applied, in schedule order, at
  /// the start of the next replica-addressed transfer, so a flow's storage
  /// traffic drives its own degradation deterministically. A scheduled
  /// crash of an already-down replica (or restart of an up one) is a no-op.
  void ScheduleReplicaCrash(size_t replica, double at_seconds);
  void ScheduleReplicaRestart(size_t replica, double at_seconds);
  void SchedulePartition(double at_seconds,
                         std::vector<std::vector<size_t>> groups);
  void ScheduleHeal(double at_seconds);

  /// Applies every scheduled replica event due at the current virtual time;
  /// called automatically by the replica transfer paths.
  void ApplyDueReplicaEvents();

  /// Attempts one message of `bytes` addressed to `replica`. Unreachable
  /// replicas (down or partitioned away from the coordinator) fail
  /// Unavailable after one latency charge without consuming a fault draw.
  /// Reachable replicas draw from their own fault plan when one is set,
  /// otherwise from the global plan.
  TransferAttempt TryTransferToReplica(size_t replica, uint64_t bytes);

  /// Attempts one replica-to-replica message of `bytes` (anti-entropy
  /// traffic). Fails Unavailable when the pair cannot reach each other.
  /// The replication channel is modeled with link-level retransmission, so
  /// a delivered message is never corrupted; the cost is still charged.
  TransferAttempt TryTransferBetweenReplicas(size_t from, size_t to,
                                             uint64_t bytes);

  /// --- Worker nodes (data-parallel training, mmlib::collective). ---
  /// A third node space, independent of participant and replica nodes: the
  /// ring-all-reduce workers of a data-parallel flow. Workers share the
  /// membership primitives of replicas (crash/restart, partition groups)
  /// but their gradient-exchange traffic draws fault decisions from a
  /// dedicated collective stream, so collective faults never shift the
  /// storage fault sequence (and vice versa) — the flow's fault-RNG draws
  /// stay bit-identical across worker counts.
  /// Declares `count` workers, all up, all in group 0. Replaces previous
  /// worker state.
  void ConfigureWorkers(size_t count);
  size_t WorkerCount() const { return workers_.size(); }

  /// Installs the failure model of the collective channel and reseeds its
  /// fault stream. Pass an inactive plan to disable collective faults.
  void set_collective_fault_plan(const FaultPlan& plan);
  const FaultPlan& collective_fault_plan() const {
    return collective_fault_plan_;
  }

  bool IsWorkerUp(size_t worker) const {
    return worker < workers_.size() && workers_[worker].up;
  }

  /// True when the worker is up and on the flow coordinator's side of any
  /// worker partition (group 0) — i.e. it can take part in a collective
  /// step right now.
  bool IsWorkerReachable(size_t worker) const {
    return worker < workers_.size() && workers_[worker].up &&
           workers_[worker].group == 0;
  }

  /// True when two distinct workers can talk to each other: both up and in
  /// the same partition group (ring neighbours need this).
  bool WorkerPairReachable(size_t a, size_t b) const {
    return a < workers_.size() && b < workers_.size() && a != b &&
           workers_[a].up && workers_[b].up &&
           workers_[a].group == workers_[b].group;
  }

  /// Kills / restarts a worker; charges the node costs like
  /// CrashNode/RestartNode. Errors mirror the participant-node variants.
  Status CrashWorker(size_t worker);
  Status RestartWorker(size_t worker);

  /// Splits the workers into partition groups, same contract as
  /// Partition(): `groups[i]` lists the workers cut into group i+1,
  /// unlisted workers stay in group 0 (the majority side the flow
  /// coordinator observes). Replica partitions are untouched.
  Status PartitionWorkers(const std::vector<std::vector<size_t>>& groups);

  /// Heals all worker partitions: every worker rejoins group 0.
  void HealWorkers();

  /// Attempts one worker-to-worker message of `bytes` (gradient-exchange
  /// traffic). Fails Unavailable after one latency charge when the pair
  /// cannot reach each other — no fault draw, so crash/partition windows
  /// never shift later collective fault decisions. Reachable pairs draw
  /// from the collective fault stream; the collective channel is modeled
  /// with link-level retransmission, so a delivered payload is never
  /// corrupted — a corruption draw is charged one extra retransmission
  /// instead.
  TransferAttempt TryTransferBetweenWorkers(size_t from, size_t to,
                                            uint64_t bytes);

  /// Per-worker tallies since the last ResetFaultCounters/Reset.
  Result<FaultCounters> WorkerFaultCounters(size_t worker) const;
  /// Messages rejected because the worker pair was unreachable.
  Result<uint64_t> WorkerRejectCount(size_t worker) const;
  Result<uint64_t> WorkerCrashCount(size_t worker) const;
  Result<uint64_t> WorkerRestartCount(size_t worker) const;
  /// Messages rejected across all workers.
  uint64_t WorkerRejectCount() const { return worker_reject_count_; }
  /// Collective-channel retransmissions charged for corruption draws.
  uint64_t WorkerRetransmitCount() const { return worker_retransmit_count_; }

  /// Per-replica tallies since the last ResetFaultCounters/Reset.
  Result<FaultCounters> ReplicaFaultCounters(size_t replica) const;
  /// Messages rejected because the replica was down or partitioned.
  Result<uint64_t> ReplicaRejectCount(size_t replica) const;
  Result<uint64_t> ReplicaCrashCount(size_t replica) const;
  Result<uint64_t> ReplicaRestartCount(size_t replica) const;

  /// Lifecycle counters since the last Reset.
  uint64_t CrashCount() const { return crash_count_; }
  uint64_t RestartCount() const { return restart_count_; }
  /// Messages that failed because their destination node was down.
  uint64_t DownNodeRejectCount() const { return down_node_reject_count_; }
  /// Messages that failed because their destination replica was down or
  /// partitioned away from the sender.
  uint64_t ReplicaRejectCount() const { return replica_reject_count_; }
  /// Partition/Heal transitions applied (direct calls and due events).
  uint64_t PartitionCount() const { return partition_count_; }
  uint64_t HealCount() const { return heal_count_; }

  /// Total simulated time spent in transfers (including faulted attempts
  /// and backoff waits).
  double TotalTransferSeconds() const { return clock_.NowSeconds(); }

  /// Total bytes moved by successful messages.
  uint64_t TotalBytes() const { return total_bytes_; }

  /// Number of messages attempted (successful or faulted).
  uint64_t MessageCount() const { return message_count_; }

  /// Fault counters since the last ResetFaultCounters/set_fault_plan/Reset.
  uint64_t DropCount() const { return faults_.drops; }
  uint64_t TimeoutCount() const { return faults_.timeouts; }
  uint64_t CorruptionCount() const { return faults_.corruptions; }
  uint64_t FaultCount() const { return faults_.Total(); }

  void Reset();

 private:
  struct ReplicaState {
    bool up = true;
    int group = 0;
    bool has_plan = false;
    FaultPlan plan;
    Rng rng{0};
    FaultCounters faults;
    uint64_t rejects = 0;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
  };

  /// Workers reuse the replica state shape minus the per-node fault plan:
  /// all workers share the one collective stream (a plan per worker would
  /// let worker count change the draw sequence).
  struct WorkerState {
    bool up = true;
    int group = 0;
    FaultCounters faults;
    uint64_t rejects = 0;
    uint64_t crashes = 0;
    uint64_t restarts = 0;
  };

  struct ReplicaEvent {
    enum class Kind { kCrash, kRestart, kPartition, kHeal };
    double at_seconds = 0.0;
    Kind kind = Kind::kCrash;
    size_t replica = 0;
    std::vector<std::vector<size_t>> groups;
  };

  /// One fault-plan decision over `bytes`; draws from `rng`, tallies into
  /// the global, per-op, and (when given) per-node counters.
  TransferAttempt AttemptWithPlan(const FaultPlan& plan, Rng* rng,
                                  uint64_t bytes, FaultCounters* node_faults);
  void CountFault(FaultCounters* replica_faults,
                  uint64_t FaultCounters::* kind);

  Link link_;
  VirtualClock clock_;
  FaultPlan fault_plan_;
  Rng fault_rng_;
  FaultPlan collective_fault_plan_;
  Rng collective_fault_rng_{FaultPlan{}.seed};
  NodeCosts node_costs_;
  std::vector<bool> node_up_;
  std::vector<ReplicaState> replicas_;
  std::vector<WorkerState> workers_;
  std::vector<ReplicaEvent> replica_events_;  // sorted by at_seconds, stable
  const char* current_op_ = nullptr;
  double request_deadline_seconds_ = 0.0;
  std::map<std::string, FaultCounters> per_op_faults_;
  uint64_t total_bytes_ = 0;
  uint64_t message_count_ = 0;
  FaultCounters faults_;
  uint64_t crash_count_ = 0;
  uint64_t restart_count_ = 0;
  uint64_t down_node_reject_count_ = 0;
  uint64_t replica_reject_count_ = 0;
  uint64_t worker_reject_count_ = 0;
  uint64_t worker_retransmit_count_ = 0;
  uint64_t partition_count_ = 0;
  uint64_t heal_count_ = 0;
};

}  // namespace mmlib::simnet
