file(REMOVE_RECURSE
  "../bench/fig11_ttr"
  "../bench/fig11_ttr.pdb"
  "CMakeFiles/fig11_ttr.dir/fig11_ttr.cc.o"
  "CMakeFiles/fig11_ttr.dir/fig11_ttr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ttr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
