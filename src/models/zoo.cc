#include "models/zoo.h"

#include "models/builders.h"
#include "util/strings.h"

namespace mmlib::models {

std::string_view ArchitectureName(Architecture arch) {
  switch (arch) {
    case Architecture::kMobileNetV2:
      return "MobileNetV2";
    case Architecture::kGoogLeNet:
      return "GoogLeNet";
    case Architecture::kResNet18:
      return "ResNet-18";
    case Architecture::kResNet50:
      return "ResNet-50";
    case Architecture::kResNet152:
      return "ResNet-152";
  }
  return "unknown";
}

Result<Architecture> ArchitectureFromName(std::string_view name) {
  for (Architecture arch : AllArchitectures()) {
    if (ArchitectureName(arch) == name) {
      return arch;
    }
  }
  return Status::NotFound("unknown architecture: " + std::string(name));
}

const std::vector<Architecture>& AllArchitectures() {
  static const std::vector<Architecture>* all = new std::vector<Architecture>{
      Architecture::kMobileNetV2, Architecture::kGoogLeNet,
      Architecture::kResNet18,    Architecture::kResNet50,
      Architecture::kResNet152,
  };
  return *all;
}

ModelConfig DefaultConfig(Architecture arch) {
  ModelConfig config;
  config.arch = arch;
  return config;
}

ModelConfig FullScaleConfig(Architecture arch) {
  ModelConfig config;
  config.arch = arch;
  config.channel_divisor = 1;
  config.num_classes = 1000;
  config.image_size = 224;
  return config;
}

Result<nn::Model> BuildModel(const ModelConfig& config) {
  switch (config.arch) {
    case Architecture::kMobileNetV2:
      return internal::BuildMobileNetV2(config);
    case Architecture::kGoogLeNet:
      return internal::BuildGoogLeNet(config);
    case Architecture::kResNet18:
    case Architecture::kResNet50:
    case Architecture::kResNet152:
      return internal::BuildResNet(config);
  }
  return Status::InvalidArgument("unknown architecture");
}

bool IsClassifierLayer(const nn::Layer& layer) {
  return layer.name() == "fc" || StartsWith(layer.name(), "classifier.");
}

int64_t ApplyPartialUpdateFreeze(nn::Model* model) {
  model->SetTrainableWhere(
      [](const nn::Layer& layer) { return IsClassifierLayer(layer); });
  return model->TrainableParamCount();
}

const std::vector<Table2Row>& Table2Reference() {
  static const std::vector<Table2Row>* rows = new std::vector<Table2Row>{
      {"MobileNetV2", 3504872, 1281000, 14.3},
      {"GoogLeNet", 6624904, 1025000, 26.7},
      {"ResNet-18", 11689512, 513000, 46.8},
      {"ResNet-50", 25557032, 2049000, 102.5},
      {"ResNet-152", 60192808, 2049000, 241.7},
  };
  return *rows;
}

}  // namespace mmlib::models
