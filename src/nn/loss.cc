#include "nn/loss.h"

#include "check/validators.h"
#include "tensor/validate.h"
#include <cmath>

namespace mmlib::nn {

Result<LossResult> SoftmaxCrossEntropy(const Tensor& logits,
                                       const std::vector<int64_t>& labels) {
  LossResult result;
  MMLIB_RETURN_IF_ERROR(
      SoftmaxCrossEntropyInto(logits, labels, /*scratch=*/nullptr, &result));
  return result;
}

Status SoftmaxCrossEntropyInto(const Tensor& logits,
                               const std::vector<int64_t>& labels,
                               util::ScratchPool* scratch, LossResult* out) {
  MMLIB_RETURN_IF_ERROR(
      check::ValidateRank(logits.shape(), 2, "SoftmaxCrossEntropy logits"));
  // A single NaN/Inf logit silently poisons the loss and every parameter on
  // the next optimizer step; reject it here, at the training-loop boundary.
  MMLIB_RETURN_IF_ERROR(
      check::ValidateAllFinite(logits, "SoftmaxCrossEntropy logits"));
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  if (static_cast<int64_t>(labels.size()) != batch) {
    return Status::InvalidArgument("label count does not match batch size");
  }

  if (out->grad_logits.shape() != logits.shape()) {
    out->grad_logits = Tensor(logits.shape());
  }
  // Per-row exp cache in double precision (exactly the values the naive
  // version computes twice), leased from the pool so repeated steps never
  // reallocate it.
  util::ScratchPool::Lease lease;
  std::vector<double> local_exps;
  double* exps = nullptr;
  if (scratch != nullptr) {
    lease = scratch->Acquire(static_cast<size_t>(classes) * 2);
    exps = lease.as_doubles();
  } else {
    local_exps.resize(static_cast<size_t>(classes));
    exps = local_exps.data();
  }

  double total_loss = 0.0;
  for (int64_t n = 0; n < batch; ++n) {
    const int64_t label = labels[n];
    MMLIB_RETURN_IF_ERROR(
        check::ValidateIndex(label, classes, "SoftmaxCrossEntropy label"));
    const float* row = logits.data() + n * classes;
    float* grad = out->grad_logits.data() + n * classes;
    float max_logit = row[0];
    for (int64_t c = 1; c < classes; ++c) {
      max_logit = std::max(max_logit, row[c]);
    }
    double sum_exp = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      exps[c] = std::exp(static_cast<double>(row[c] - max_logit));
      sum_exp += exps[c];
    }
    const double log_sum = std::log(sum_exp);
    total_loss += log_sum - (row[label] - max_logit);
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (int64_t c = 0; c < classes; ++c) {
      const double p = exps[c] / sum_exp;
      grad[c] = (static_cast<float>(p) - (c == label ? 1.0f : 0.0f)) *
                inv_batch;
    }
  }
  out->loss = static_cast<float>(total_loss / batch);
  return Status::OK();
}

Result<float> Accuracy(const Tensor& logits,
                       const std::vector<int64_t>& labels) {
  MMLIB_RETURN_IF_ERROR(
      check::ValidateRank(logits.shape(), 2, "Accuracy logits"));
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  if (static_cast<int64_t>(labels.size()) != batch) {
    return Status::InvalidArgument("label count does not match batch size");
  }
  int64_t correct = 0;
  for (int64_t n = 0; n < batch; ++n) {
    const float* row = logits.data() + n * classes;
    int64_t best = 0;
    for (int64_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) {
        best = c;
      }
    }
    if (best == labels[n]) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(batch);
}

}  // namespace mmlib::nn
