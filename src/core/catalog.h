#pragma once

#include <string>
#include <vector>

#include "core/types.h"
#include "json/json.h"
#include "util/result.h"

namespace mmlib::core {

/// Summary of one managed model, assembled from its stored documents.
struct ModelSummary {
  std::string id;
  std::string approach;
  /// Empty for initial models.
  std::string base_model_id;
  std::string architecture_fingerprint;
  std::string params_hash;
  /// True when a full parameter snapshot is stored (baseline saves and the
  /// initial models of PUA/MPA chains).
  bool has_params_snapshot = false;
};

/// Management operations over the models in a store: listing, inspecting
/// derivation chains, and deleting models without breaking the recursive
/// recovery of others (paper use case U4 requires the server "to monitor
/// every model that exists").
class ModelCatalog {
 public:
  explicit ModelCatalog(StorageBackends backends) : backends_(backends) {}

  /// Summaries of all stored models, ordered by id.
  Result<std::vector<ModelSummary>> ListModels();

  /// Summary of one model.
  Result<ModelSummary> GetInfo(const std::string& id);

  /// The derivation chain from `id` to its root: {id, base, ..., initial}.
  Result<std::vector<std::string>> GetChain(const std::string& id);

  /// Ids of models directly derived from `id`.
  Result<std::vector<std::string>> GetDerived(const std::string& id);

  /// Deletes a model together with its owned documents (environment, code,
  /// provenance) and files (parameter snapshot, update, Merkle tree,
  /// optimizer state, dataset archive).
  ///
  /// Fails with FailedPrecondition when any other model references `id` as
  /// its base: deleting it would make those models unrecoverable under the
  /// PUA/MPA's recursive recovery.
  Status DeleteModel(const std::string& id);

  /// Deletes `id` and, transitively, every model derived from it
  /// (children first). Returns the number of models deleted.
  Result<size_t> DeleteModelTree(const std::string& id);

 private:
  Result<ModelSummary> SummaryFromDoc(const json::Value& doc);

  StorageBackends backends_;
};

}  // namespace mmlib::core

