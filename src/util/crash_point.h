#pragma once

#include <cstdint>
#include <exception>
#include <string>
#include <vector>

namespace mmlib::util {

/// Thrown by an armed crash point to simulate a process kill. The exception
/// unwinds to the test harness, which then reopens the stores cold — exactly
/// what a restarted process would see. Cleanup code that would not run in a
/// real kill (SaveTransaction rollback, journal record removal) must check
/// CrashPoint::crash_in_progress() and skip its work on this path, otherwise
/// the simulated crash is gentler than the real one and recovery tests lie.
class CrashException : public std::exception {
 public:
  explicit CrashException(std::string site)
      : site_(std::move(site)), message_("simulated crash at " + site_) {}

  const char* what() const noexcept override { return message_.c_str(); }
  const std::string& site() const { return site_; }

 private:
  std::string site_;
  std::string message_;
};

/// Process-wide registry of named crash sites. Production code marks every
/// point where a kill would be interesting with MMLIB_CRASH_POINT("name");
/// unarmed sites cost one relaxed atomic load. Tests arm one site at a time
/// (optionally at the Nth hit) and drive the code until it throws, then call
/// ResetAfterCrash() before reopening state. Deterministic by construction:
/// the site fires at an exact hit count, not a probability — the same kill
/// happens on every run, like a simnet::FaultPlan with probability pinned
/// to a specific message.
class CrashPoint {
 public:
  /// Registers a site name (idempotent); returns true so it can seed a
  /// function-local static. Sites self-register on first execution.
  static bool Register(const std::string& name);

  /// Arms `name`: the site throws on its `fire_on_hit`-th execution after
  /// this call (1 = next execution). Only one site is armed at a time;
  /// arming replaces any previous arming and resets the hit counter.
  static void Arm(const std::string& name, uint64_t fire_on_hit = 1);

  /// Disarms without firing; pending hit counts are discarded.
  static void Disarm();

  /// Called by MMLIB_CRASH_POINT. Returns true when the armed site reached
  /// its hit count; the caller must then throw CrashException. Also flips
  /// the crash_in_progress flag so unwind-path cleanup can stand down.
  static bool Fires(const std::string& name);

  /// True between an armed site firing and ResetAfterCrash(). While set,
  /// destructors must not undo durable writes — a killed process would not
  /// have either.
  static bool crash_in_progress();

  /// Acknowledges a simulated crash: clears the crash flag and disarms.
  /// Call after catching CrashException and before reopening stores.
  static void ResetAfterCrash();

  /// All site names registered so far, sorted. Sites register lazily on
  /// first execution, so run the code path of interest once before
  /// enumerating (crash-matrix tests do a clean discovery pass first).
  static std::vector<std::string> RegisteredSites();
};

}  // namespace mmlib::util

/// Marks a named crash site. Registers the site on first execution, then
/// throws CrashException when a test armed this name for the current hit.
#define MMLIB_CRASH_POINT(site)                                            \
  do {                                                                     \
    static const bool mmlib_cp_registered =                                \
        ::mmlib::util::CrashPoint::Register(site);                         \
    (void)mmlib_cp_registered;                                             \
    if (::mmlib::util::CrashPoint::Fires(site)) {                          \
      throw ::mmlib::util::CrashException(site);                           \
    }                                                                      \
  } while (0)
