"""Finding type and stable fingerprints for the baseline."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Finding:
    rule: str
    path: str  # repo-relative, posix separators
    line: int
    message: str
    suppressible: bool = True
    fingerprint: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


def assign_fingerprints(findings: List[Finding],
                        file_lines: Dict[str, List[str]]) -> None:
    """Computes content-addressed fingerprints.

    A fingerprint hashes (rule, path, stripped source line text, occurrence
    index among identical keys) — not the line *number* — so a baseline entry
    survives unrelated edits that shift the finding up or down the file.
    """
    counts: Dict[str, int] = {}
    for f in sorted(findings, key=lambda x: (x.path, x.line, x.rule)):
        lines = file_lines.get(f.path, [])
        text = lines[f.line - 1].strip() if 0 < f.line <= len(lines) else ""
        key = f"{f.rule}|{f.path}|{text}"
        nth = counts.get(key, 0)
        counts[key] = nth + 1
        digest = hashlib.sha256(f"{key}|{nth}".encode()).hexdigest()[:16]
        f.fingerprint = digest
