#pragma once

#include <memory>
#include <string>

#include "kernels/linear_plan.h"
#include "nn/layer.h"

namespace mmlib::nn {

/// Fully connected layer: y = x W^T + b with input [N, in] and output
/// [N, out]. Weights are Kaiming-uniform initialized from `rng`.
///
/// Deterministic executions of non-trivial shapes run through a
/// kernels::LinearPlan (packed cache-blocked GEMM); tiny shapes and all
/// non-deterministic executions keep the direct dot-product loop.
class Linear : public Layer {
 public:
  Linear(std::string name, int64_t in_features, int64_t out_features,
         Rng* rng);

  std::string_view type() const override { return "linear"; }

  Result<Tensor> Forward(const std::vector<const Tensor*>& inputs,
                         ExecutionContext* ctx) override;
  Result<std::vector<Tensor>> Backward(const Tensor& grad_output,
                                       ExecutionContext* ctx) override;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Tensor cached_input_;
  bool has_forward_ = false;
  /// Plan for the last Forward batch size; refreshed from the PlanCache
  /// when the batch changes. Null until the first deterministic Forward.
  std::shared_ptr<const kernels::LinearPlan> plan_;
};

}  // namespace mmlib::nn

