file(REMOVE_RECURSE
  "../bench/table3_flows"
  "../bench/table3_flows.pdb"
  "CMakeFiles/table3_flows.dir/table3_flows.cc.o"
  "CMakeFiles/table3_flows.dir/table3_flows.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
