"""Include-graph layering tests: band loading, declaration validation, and
the layering rule against the real layers.toml bands."""

import unittest

from tools.mmlint import includes
from tools.mmlint.tests.util import (as_triples, fixture_context, golden,
                                     make_context)
from tools.mmlint import engine


class BandsTest(unittest.TestCase):
    def test_real_layers_toml_loads(self):
        bands = includes.load_bands()
        self.assertEqual(bands["util"], 0)
        self.assertGreater(bands["dist"], bands["core"])
        self.assertGreater(bands["core"], bands["filestore"])
        for module, band in bands.items():
            self.assertIsInstance(band, int, module)

    def test_fallback_parser_agrees_with_tomllib(self):
        text = includes.LAYERS_FILE.read_text(encoding="utf-8")
        self.assertEqual(includes._parse_bands_subset(text),
                         includes.load_bands())

    def test_module_of(self):
        self.assertEqual(includes.module_of("src/core/model.h"), "core")
        self.assertEqual(includes.module_of("tests/foo_test.cc"), "")
        self.assertEqual(includes.module_of("src/top.h"), "")


class DeclarationTest(unittest.TestCase):
    def test_missing_module_is_reported(self):
        findings = []
        includes.check_declaration({"util": 0}, ["util", "newmod"], findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("src/newmod", findings[0].message)
        self.assertFalse(findings[0].suppressible)

    def test_stale_band_is_reported(self):
        findings = []
        includes.check_declaration({"util": 0, "gone": 1}, ["util"], findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("'gone'", findings[0].message)

    def test_repo_modules_exactly_match_declaration(self):
        contexts = engine.make_contexts(engine.collect_repo_files())
        src_modules = sorted(
            {includes.module_of(c.relpath)
             for c in contexts if c.relpath.startswith("src/")} - {""})
        findings = []
        includes.check_declaration(includes.load_bands(), src_modules,
                                   findings)
        self.assertEqual(findings, [])


class LayeringRuleTest(unittest.TestCase):
    def test_fixture_against_real_bands(self):
        ctx = fixture_context("layering.cc")
        bands = includes.load_bands()
        findings = []
        includes.check_layering(ctx, bands, findings)
        engine.apply_suppressions([ctx], findings)
        self.assertEqual(as_triples(findings), golden("layering.expected.json"))

    def test_direction_is_named(self):
        bands = {"util": 0, "core": 1, "dist": 2}
        up = make_context("src/core/a.cc", '#include "dist/rpc.h"\n')
        lat = make_context("src/util/b.cc", '#include "util2/x.h"\n')
        findings = []
        includes.check_layering(up, bands, findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("upward", findings[0].message)
        findings = []
        includes.check_layering(
            make_context("src/dist/c.cc", '#include "core/model.h"\n'),
            bands, findings)
        self.assertEqual(findings, [])  # downward is legal
        findings = []
        includes.check_layering(lat, bands, findings)
        self.assertEqual(findings, [])  # util2 not banded: declaration's job

    def test_lateral_include_flagged(self):
        bands = {"hash": 1, "check": 1}
        ctx = make_context("src/check/a.cc", '#include "hash/sha256.h"\n')
        findings = []
        includes.check_layering(ctx, bands, findings)
        self.assertEqual(len(findings), 1)
        self.assertIn("lateral", findings[0].message)

    def test_repo_has_no_layering_violations(self):
        contexts = [c for c in engine.make_contexts(engine.collect_repo_files())
                    if c.relpath.startswith("src/")]
        bands = includes.load_bands()
        findings = []
        for ctx in contexts:
            includes.check_layering(ctx, bands, findings)
        self.assertEqual([str(f) for f in findings], [])


if __name__ == "__main__":
    unittest.main()
