file(REMOVE_RECURSE
  "CMakeFiles/persistence_integration_test.dir/persistence_integration_test.cc.o"
  "CMakeFiles/persistence_integration_test.dir/persistence_integration_test.cc.o.d"
  "persistence_integration_test"
  "persistence_integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistence_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
