// fixture-path: src/nn/fixture_rand.cc
#include <cstdlib>
#include <random>

namespace mmlib::nn {

int BadEntropy() {
  std::random_device rd;  // finding: random_device
  srand(42);              // finding: srand
  return rand();          // finding: rand
}

int AllowedEntropy() {
  return rand();  // lint:allow(no-raw-rand)
}

int NotTheLibcRand() {
  int brand = mylib::rand(7);  // qualified by another library: no finding
  // rand() inside a comment never fires.
  const char* doc = "seed with rand() once";  // nor inside a string
  (void)doc;
  return brand;
}

int StaleAllow() {
  return 7;  // lint:allow(no-raw-rand)
}

}  // namespace mmlib::nn
