file(REMOVE_RECURSE
  "../bench/fig10_tts"
  "../bench/fig10_tts.pdb"
  "CMakeFiles/fig10_tts.dir/fig10_tts.cc.o"
  "CMakeFiles/fig10_tts.dir/fig10_tts.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
