#pragma once

#include "compress/codec.h"
#include "core/save_service.h"

namespace mmlib::core {

/// Options of the model provenance approach.
struct ProvenanceOptions {
  /// Codec used to archive training datasets to a single file.
  CodecKind dataset_codec = CodecKind::kLz77;
  /// When set, datasets are assumed to be managed by a dedicated external
  /// system (paper Section 3.3 "Managing Data sets", citing Agrawal et al.):
  /// only a content-hash reference is stored instead of the archive.
  /// Recovery then resolves the reference through a DatasetResolver.
  bool external_dataset_manager = false;
};

/// Model provenance approach (MPA, paper Section 3.3): an initial model is
/// saved like the baseline; a derived model is represented by (1) the
/// training process (TrainService and wrapper documents), (2) the training
/// environment, (3) the training data (archived to one file), and (4) a
/// reference to the base model — instead of any parameters.
class ProvenanceSaveService : public SaveService {
 public:
  ProvenanceSaveService(StorageBackends backends, ProvenanceOptions options)
      : SaveService(backends), options_(options) {}
  explicit ProvenanceSaveService(StorageBackends backends)
      : ProvenanceSaveService(backends, ProvenanceOptions{}) {}

  std::string_view approach() const override { return kApproachProvenance; }

  /// For derived models, request.provenance must be set and captured
  /// *before* the training that produced request.model ran.
  Result<SaveResult> DoSaveModel(const SaveRequest& request) override;

 private:
  ProvenanceOptions options_;
};

}  // namespace mmlib::core

