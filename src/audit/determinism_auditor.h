#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hash/merkle_tree.h"
#include "hash/sha256.h"
#include "nn/model.h"
#include "util/result.h"

/// Determinism auditor (DESIGN.md "Correctness tooling").
///
/// The proxy-update and provenance approaches (paper Sections 3.2/3.3) only
/// recover models correctly when deterministic training is bit-reproducible:
/// replaying the captured provenance must reproduce every parameter byte
/// (Figure 13). The auditor guards that property at layer granularity: it
/// observes a model's forward/backward passes, hashes every layer output and
/// input-gradient with the repo's SHA-256, and compares later runs against
/// the first (reference) run as events stream in, failing fast at the first
/// diverging layer instead of at the end-of-training parameter diff.
namespace mmlib::audit {

struct DeterminismAuditOptions {
  /// Hash backward-pass input gradients in addition to forward outputs.
  bool include_backward = true;
  /// Abort via MMLIB_CHECK on the first divergence instead of reporting it
  /// through EndRun(); for harness runs where a divergence means every later
  /// result is garbage.
  bool fatal = false;
};

/// One observed event: the digest of a layer's forward output or backward
/// input-gradient, in execution order.
struct AuditEvent {
  enum class Pass { kForward, kBackward };
  Pass pass = Pass::kForward;
  std::string layer_name;
  Digest digest;
};

/// The first detected run-to-run divergence.
struct AuditDivergence {
  size_t run = 0;       ///< Index of the diverging run (reference is run 0).
  size_t position = 0;  ///< Event position within the run.
  AuditEvent::Pass pass = AuditEvent::Pass::kForward;
  std::string layer_name;
  Digest expected;
  Digest actual;

  /// "forward event #3 (conv1) of run 1 diverged: expected <hex>, got <hex>"
  std::string ToString() const;
};

/// ActivationObserver that records a reference trace on its first run and
/// verifies subsequent runs against it event by event.
///
/// Usage:
///   DeterminismAuditor auditor;
///   model.set_observer(&auditor);
///   auditor.BeginRun();  /* run forward+backward */  s1 = auditor.EndRun();
///   auditor.BeginRun();  /* run again            */  s2 = auditor.EndRun();
///   // s2 is Corruption naming the first diverging layer, if any.
class DeterminismAuditor : public nn::ActivationObserver {
 public:
  explicit DeterminismAuditor(DeterminismAuditOptions options = {})
      : options_(options) {}

  /// Starts recording a run. The first completed run becomes the reference.
  void BeginRun();

  /// Seals the current run and reports its verdict: OK for the reference run
  /// and for byte-identical repeats; Corruption (first diverging layer, with
  /// both digests) otherwise.
  Status EndRun();

  void OnForward(const std::string& layer_name, const Tensor& output) override;
  void OnBackward(const std::string& layer_name,
                  const Tensor& grad_input) override;

  size_t completed_runs() const { return completed_runs_; }
  const std::vector<AuditEvent>& reference_trace() const { return reference_; }

  /// First divergence observed over all runs, if any.
  const std::optional<AuditDivergence>& first_divergence() const {
    return divergence_;
  }

  /// Merkle root over the reference-trace digests: a compact fingerprint of
  /// the whole audited execution that can be persisted with provenance data
  /// and compared across machines. Requires a completed reference run.
  Result<Digest> ReferenceRoot() const;

  /// Drops all recorded state; the next run becomes a new reference.
  void Reset();

 private:
  void Record(AuditEvent::Pass pass, const std::string& layer_name,
              const Tensor& tensor);

  DeterminismAuditOptions options_;
  std::vector<AuditEvent> reference_;
  std::optional<AuditDivergence> divergence_;
  size_t completed_runs_ = 0;
  size_t cursor_ = 0;          // next event position in the active run
  bool run_active_ = false;
  bool run_diverged_ = false;  // divergence seen in the active run
};

/// Convenience audit: executes forward+backward on `model` `runs` times with
/// identically seeded deterministic contexts (backward driven by an all-ones
/// output gradient) and returns Corruption naming the first diverging layer.
/// A deterministic build of mmlib must pass this for every model; the Fig. 13
/// reproduction relies on it.
Status AuditDeterminism(nn::Model* model, const Tensor& input, uint64_t seed,
                        size_t runs = 2,
                        DeterminismAuditOptions options = {});

}  // namespace mmlib::audit
