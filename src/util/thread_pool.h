#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mmlib::util {

/// Fixed-size worker pool with a deterministic `ParallelFor`.
///
/// Determinism contract (DESIGN.md "Threading model"): `ParallelFor`
/// partitions `[0, total)` into chunks whose boundaries depend only on
/// `total` and `grain` — never on the worker count or on scheduling order.
/// Chunks must write disjoint outputs; reductions accumulate into per-chunk
/// scratch that the caller combines in chunk-index order after ParallelFor
/// returns. Under that discipline every result is bit-identical whether the
/// pool runs 1 thread or 16, which is what keeps the DeterminismAuditor's
/// Fig. 13 replays stable across machines with different core counts.
///
/// The pool size is fixed at construction; the process-wide default pool
/// (`Global()`) sizes itself from the MMLIB_THREADS environment variable,
/// falling back to the hardware thread count.
class ThreadPool {
 public:
  /// `thread_count` is the total number of threads that execute chunks,
  /// including the calling thread: the pool spawns `thread_count - 1`
  /// workers. 0 is treated as 1 (fully serial, no workers).
  explicit ThreadPool(size_t thread_count);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in ParallelFor (workers + caller).
  size_t thread_count() const { return workers_.size() + 1; }

  /// Chunk body: processes `[begin, end)`; `chunk_index` identifies the
  /// chunk for per-chunk scratch/seeding. Must not touch another chunk's
  /// output.
  using ChunkFn = std::function<void(int64_t begin, int64_t end,
                                     size_t chunk_index)>;

  /// Runs `fn` over `[0, total)` in chunks of `grain` elements (the last
  /// chunk may be short). Chunk boundaries are a pure function of `total`
  /// and `grain`. Blocks until every chunk has completed; if any chunk body
  /// throws, the exception from the lowest-indexed failing chunk is
  /// rethrown here (remaining chunks still run). Nested calls from inside a
  /// chunk body execute inline on the calling thread.
  void ParallelFor(int64_t total, int64_t grain, const ChunkFn& fn);

  /// Lazily constructed process-wide pool; size from MMLIB_THREADS.
  /// Never destroyed (workers must outlive static teardown).
  static ThreadPool* Global();

  /// Thread count Global() would use: MMLIB_THREADS if set and valid,
  /// otherwise the hardware thread count.
  static size_t DefaultThreadCount();

  /// Parses a MMLIB_THREADS-style value. nullptr, empty, or non-numeric
  /// values yield `fallback`; 0 yields 1; results clamp to [1, 1024].
  static size_t ParseThreadCount(const char* value, size_t fallback);

 private:
  struct Job;

  void WorkerLoop();
  static void RunChunks(Job* job);

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: new job or shutdown
  std::condition_variable done_cv_;  // caller: all chunks finished
  std::shared_ptr<Job> job_;         // active job, null when idle
  uint64_t job_generation_ = 0;
  bool shutdown_ = false;
  std::mutex submit_mutex_;  // serializes concurrent ParallelFor callers
  std::vector<std::thread> workers_;
};

/// Number of chunks ParallelFor creates for (total, grain): grain <= 0 is
/// treated as 1. Use to size per-chunk scratch buffers.
inline int64_t NumChunks(int64_t total, int64_t grain) {
  if (total <= 0) {
    return 0;
  }
  if (grain <= 0) {
    grain = 1;
  }
  return (total + grain - 1) / grain;
}

/// Grain producing at most `max_chunks` chunks over `total` — a function of
/// the problem size only, so chunk boundaries (and therefore any fixed-order
/// reduction over them) stay independent of the thread count.
inline int64_t GrainForMaxChunks(int64_t total, int64_t max_chunks) {
  if (total <= 0 || max_chunks <= 0) {
    return 1;
  }
  return (total + max_chunks - 1) / max_chunks;
}

/// ParallelFor on `pool`, or on the global pool when `pool` is null.
void ParallelFor(ThreadPool* pool, int64_t total, int64_t grain,
                 const ThreadPool::ChunkFn& fn);

}  // namespace mmlib::util
