"""mmlint engine: file collection, rule dispatch, suppression handling,
baseline filtering, and the crash-point coverage report."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from . import callgraph, includes, rules_token
from .findings import Finding, assign_fingerprints
from .lexer import lex
from .rules_token import RULES, FileContext

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_FILE = Path(__file__).resolve().parent / "baseline.json"

CPP_SUFFIXES = (".cc", ".cpp", ".h", ".hpp")
SCAN_DIRS = ("src", "tests", "bench", "examples")

# Rules implemented outside rules_token.py, for --list-rules.
EXTRA_RULES = {
    "layering": "include must follow the architecture DAG "
                "(tools/mmlint/layers.toml)",
    "no-wall-clock": "std::chrono clocks / time() / clock() outside "
                     "src/util/ and src/simnet/",
    "no-unordered-order-leak": "unordered_map/set iteration feeding "
                               "hashed/serialized output",
    "crash-point-coverage": "persistence call site unreachable from any "
                            "MMLIB_CRASH_POINT",
    "unused-suppression": "stale lint:allow(...) comment that suppresses "
                          "nothing (not itself suppressible)",
}


def all_rule_docs() -> Dict[str, str]:
    docs = {rule_id: doc for rule_id, (_fn, doc) in RULES.items()}
    docs.update(EXTRA_RULES)
    return docs


@dataclass
class LintResult:
    findings: List[Finding] = field(default_factory=list)  # active
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    coverage_sites: List[callgraph.CoverageSite] = field(default_factory=list)
    coverage: Dict = field(default_factory=dict)
    file_count: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


def collect_repo_files(paths: Optional[List[str]] = None,
                       root: Path = REPO_ROOT) -> List[Path]:
    if paths:
        files: List[Path] = []
        for arg in paths:
            p = Path(arg)
            if p.is_dir():
                files.extend(sorted(
                    f for f in p.rglob("*") if f.suffix in CPP_SUFFIXES))
            elif p.exists():
                files.append(p)
            else:
                raise FileNotFoundError(f"no such file or directory: {arg}")
        return [f for f in files if f.suffix in CPP_SUFFIXES]
    files = []
    for d in SCAN_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(sorted(
                f for f in base.rglob("*") if f.suffix in CPP_SUFFIXES))
    return files


def make_contexts(files: List[Path],
                  root: Path = REPO_ROOT) -> List[FileContext]:
    contexts = []
    for f in files:
        try:
            rel = f.resolve().relative_to(root).as_posix()
        except ValueError:
            rel = f.as_posix()
        text = f.read_text(encoding="utf-8", errors="replace")
        contexts.append(FileContext(relpath=rel, lexed=lex(text), text=text))
    return contexts


def run_rules(contexts: List[FileContext],
              bands: Optional[Dict[str, int]] = None,
              full_graph: bool = True) -> Tuple[List[Finding],
                                                List[callgraph.CoverageSite]]:
    """Runs every rule over the contexts. `full_graph=False` skips the
    declaration check (for linting a file subset)."""
    findings: List[Finding] = []
    if bands is None:
        bands = includes.load_bands()

    # Layer 1: token rules.
    for ctx in contexts:
        for fn, _doc in RULES.values():
            fn(ctx, findings)

    # Layer 2: include graph.
    src_contexts = [c for c in contexts if c.relpath.startswith("src/")]
    if full_graph:
        src_modules = sorted(
            {includes.module_of(c.relpath) for c in src_contexts}
            - {""})
        includes.check_declaration(bands, src_modules, findings)
    for ctx in src_contexts:
        includes.check_layering(ctx, bands, findings)

    # Layer 3: function index + call graph. Crash-point coverage needs the
    # WHOLE src/ graph — on a file subset, crash points living in other TUs
    # are invisible and every site would look uncovered — so it only runs
    # on full-repo invocations (the leak rule merely under-approximates on
    # subsets, which is safe).
    index = callgraph.build_index(src_contexts)
    for ctx in src_contexts:
        callgraph.check_wall_clock(ctx, findings)
    callgraph.check_unordered_order_leak(src_contexts, index, findings)
    if full_graph:
        coverage_sites = callgraph.check_crash_point_coverage(index, findings)
    else:
        coverage_sites = []

    apply_suppressions(contexts, findings)
    return findings, coverage_sites


def apply_suppressions(contexts: List[FileContext],
                       findings: List[Finding]) -> None:
    """Honors `// lint:allow(rule-id)` and flags stale/unknown allows."""
    known_rules = set(all_rule_docs())
    by_path = {c.relpath: c for c in contexts}
    kept: List[Finding] = []
    for f in findings:
        ctx = by_path.get(f.path)
        suppressed = False
        if ctx is not None and f.suppressible:
            for allow in ctx.lexed.allows:
                if allow.line == f.line and allow.rule == f.rule:
                    allow.used = True
                    suppressed = True
        if not suppressed:
            kept.append(f)
    findings[:] = kept
    for ctx in contexts:
        for allow in ctx.lexed.allows:
            if allow.used:
                continue
            if allow.rule not in known_rules:
                findings.append(Finding(
                    "unused-suppression", ctx.relpath, allow.line,
                    f"lint:allow({allow.rule}) names an unknown rule; "
                    "see --list-rules", suppressible=False))
            else:
                findings.append(Finding(
                    "unused-suppression", ctx.relpath, allow.line,
                    f"stale lint:allow({allow.rule}): nothing on this line "
                    "triggers the rule any more; delete the comment so "
                    "suppressions stay meaningful", suppressible=False))


def load_baseline(path: Path = BASELINE_FILE) -> List[Dict]:
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if isinstance(data, dict):
        data = data.get("findings", [])
    return data


def write_baseline(findings: List[Finding],
                   path: Path = BASELINE_FILE) -> None:
    entries = [{"fingerprint": f.fingerprint, "rule": f.rule, "path": f.path}
               for f in sorted(findings,
                               key=lambda x: (x.path, x.line, x.rule))]
    path.write_text(json.dumps(entries, indent=2) + "\n", encoding="utf-8")


def lint(paths: Optional[List[str]] = None,
         root: Path = REPO_ROOT,
         baseline_path: Path = BASELINE_FILE,
         bands: Optional[Dict[str, int]] = None) -> LintResult:
    files = collect_repo_files(paths, root)
    contexts = make_contexts(files, root)
    findings, coverage_sites = run_rules(
        contexts, bands=bands, full_graph=not paths)

    file_lines = {c.relpath: c.text.splitlines() for c in contexts}
    assign_fingerprints(findings, file_lines)

    baseline = load_baseline(baseline_path)
    baseline_fps = {e["fingerprint"] for e in baseline}
    result = LintResult(file_count=len(files))
    seen_fps = set()
    for f in sorted(findings, key=lambda x: (x.path, x.line, x.rule)):
        seen_fps.add(f.fingerprint)
        if f.fingerprint in baseline_fps:
            result.baselined.append(f)
        else:
            result.findings.append(f)
    if not paths:  # stale entries are only meaningful on a full-repo run
        result.stale_baseline = sorted(
            e["fingerprint"] for e in baseline
            if e["fingerprint"] not in seen_fps)

    result.coverage_sites = coverage_sites
    if not paths:  # coverage is only computed on full-repo runs
        result.coverage = callgraph.coverage_summary(coverage_sites)
        # Count distinct registered crash point sites over src/.
        src_contexts = [c for c in contexts if c.relpath.startswith("src/")]
        index = callgraph.build_index(src_contexts)
        sites = {name for fn in index.functions
                 for name, _ in fn.crash_points}
        result.coverage["registered_crash_points"] = len(sites)
    return result
