#include "core/model_code.h"

namespace mmlib::core {

json::Value CodeDescriptorFor(const models::ModelConfig& config) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("architecture", std::string(models::ArchitectureName(config.arch)));
  doc.Set("channel_divisor", config.channel_divisor);
  doc.Set("num_classes", config.num_classes);
  doc.Set("image_size", config.image_size);
  doc.Set("init_seed", static_cast<int64_t>(config.init_seed));
  return doc;
}

Result<models::ModelConfig> ConfigFromCodeDescriptor(const json::Value& doc) {
  models::ModelConfig config;
  MMLIB_ASSIGN_OR_RETURN(std::string name, doc.GetString("architecture"));
  MMLIB_ASSIGN_OR_RETURN(config.arch, models::ArchitectureFromName(name));
  MMLIB_ASSIGN_OR_RETURN(config.channel_divisor,
                         doc.GetInt("channel_divisor"));
  MMLIB_ASSIGN_OR_RETURN(config.num_classes, doc.GetInt("num_classes"));
  MMLIB_ASSIGN_OR_RETURN(config.image_size, doc.GetInt("image_size"));
  MMLIB_ASSIGN_OR_RETURN(int64_t seed, doc.GetInt("init_seed"));
  config.init_seed = static_cast<uint64_t>(seed);
  return config;
}

Result<nn::Model> BuildModelFromCode(const json::Value& doc) {
  MMLIB_ASSIGN_OR_RETURN(models::ModelConfig config,
                         ConfigFromCodeDescriptor(doc));
  return models::BuildModel(config);
}

}  // namespace mmlib::core
