#include "compress/codec.h"

#include <cstring>

#include "compress/huffman.h"
#include "hash/sha256.h"

namespace mmlib {

namespace {

constexpr uint32_t kFrameMagic = 0x4d4d4c46;  // "MMLF"

void WriteVarint(Bytes* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

Result<uint64_t> ReadVarint(const Bytes& in, size_t* pos) {
  uint64_t v = 0;
  int shift = 0;
  while (*pos < in.size()) {
    const uint8_t byte = in[(*pos)++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      return v;
    }
    shift += 7;
    if (shift > 63) {
      break;
    }
  }
  return Status::Corruption("truncated varint");
}

}  // namespace

Result<Bytes> Codec::Frame(const Bytes& input) const {
  MMLIB_ASSIGN_OR_RETURN(Bytes compressed, Compress(input));
  BytesWriter writer;
  writer.WriteU32(kFrameMagic);
  writer.WriteU8(static_cast<uint8_t>(kind()));
  writer.WriteU64(input.size());
  writer.WriteU32(Crc32(input));
  writer.WriteBlob(compressed);
  return writer.TakeBytes();
}

Result<Bytes> Codec::Unframe(const Bytes& frame) {
  BytesReader reader(frame);
  MMLIB_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  MMLIB_ASSIGN_OR_RETURN(uint8_t kind_byte, reader.ReadU8());
  if (kind_byte > static_cast<uint8_t>(CodecKind::kLz77Huffman)) {
    return Status::Corruption("unknown codec id " + std::to_string(kind_byte));
  }
  MMLIB_ASSIGN_OR_RETURN(uint64_t original_size, reader.ReadU64());
  MMLIB_ASSIGN_OR_RETURN(uint32_t expected_crc, reader.ReadU32());
  MMLIB_ASSIGN_OR_RETURN(Bytes compressed, reader.ReadBlob());
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after frame");
  }
  if (original_size > kDefaultMaxOutput) {
    return Status::Corruption("frame original size out of range");
  }
  const Codec* codec = ForKind(static_cast<CodecKind>(kind_byte));
  // The header's size field bounds decompression, so a corrupted stream
  // cannot expand past the expected payload.
  MMLIB_ASSIGN_OR_RETURN(
      Bytes payload,
      codec->Decompress(compressed, static_cast<size_t>(original_size)));
  if (payload.size() != original_size) {
    return Status::Corruption("decompressed size mismatch");
  }
  if (Crc32(payload) != expected_crc) {
    return Status::Corruption("frame checksum mismatch");
  }
  return payload;
}

const Codec* Codec::ForKind(CodecKind kind) {
  static const IdentityCodec* identity = new IdentityCodec();
  static const RleCodec* rle = new RleCodec();
  static const Lz77Codec* lz77 = new Lz77Codec();
  static const Lz77HuffmanCodec* lz77_huffman = new Lz77HuffmanCodec();
  switch (kind) {
    case CodecKind::kIdentity:
      return identity;
    case CodecKind::kRle:
      return rle;
    case CodecKind::kLz77:
      return lz77;
    case CodecKind::kLz77Huffman:
      return lz77_huffman;
  }
  return identity;
}

Result<const Codec*> Codec::ForName(std::string_view name) {
  for (CodecKind kind :
       {CodecKind::kIdentity, CodecKind::kRle, CodecKind::kLz77,
        CodecKind::kLz77Huffman}) {
    const Codec* codec = ForKind(kind);
    if (codec->name() == name) {
      return codec;
    }
  }
  return Status::NotFound("unknown codec: " + std::string(name));
}

Result<Bytes> IdentityCodec::Compress(const Bytes& input) const {
  return input;
}

Result<Bytes> IdentityCodec::Decompress(const Bytes& input,
                                        size_t max_output) const {
  if (input.size() > max_output) {
    return Status::Corruption("identity payload exceeds output limit");
  }
  return input;
}

Result<Bytes> RleCodec::Compress(const Bytes& input) const {
  // Format: sequence of (varint count, byte) pairs.
  Bytes out;
  size_t i = 0;
  while (i < input.size()) {
    const uint8_t value = input[i];
    size_t run = 1;
    while (i + run < input.size() && input[i + run] == value) {
      ++run;
    }
    WriteVarint(&out, run);
    out.push_back(value);
    i += run;
  }
  return out;
}

Result<Bytes> RleCodec::Decompress(const Bytes& input,
                                   size_t max_output) const {
  Bytes out;
  size_t pos = 0;
  while (pos < input.size()) {
    MMLIB_ASSIGN_OR_RETURN(uint64_t run, ReadVarint(input, &pos));
    if (pos >= input.size()) {
      return Status::Corruption("RLE stream truncated");
    }
    if (run == 0 || run > max_output - out.size()) {
      return Status::Corruption("invalid RLE run length");
    }
    out.insert(out.end(), run, input[pos++]);
  }
  return out;
}

Result<Bytes> Lz77HuffmanCodec::Compress(const Bytes& input) const {
  MMLIB_ASSIGN_OR_RETURN(Bytes tokens,
                         Codec::ForKind(CodecKind::kLz77)->Compress(input));
  return huffman::Encode(tokens);
}

Result<Bytes> Lz77HuffmanCodec::Decompress(const Bytes& input,
                                           size_t max_output) const {
  // The LZ77 token stream is at most a small constant factor larger than
  // the decompressed payload (literal runs carry their bytes verbatim).
  MMLIB_ASSIGN_OR_RETURN(
      Bytes tokens,
      huffman::Decode(input, /*max_output=*/2 * max_output + 1024));
  return Codec::ForKind(CodecKind::kLz77)->Decompress(tokens, max_output);
}

namespace {

// LZ77 token stream:
//   0x00 <varint len> <len literal bytes>
//   0x01 <varint len> <varint distance>     (len >= kMinMatch)
constexpr size_t kWindowSize = 64 * 1024;
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = 1024;
constexpr size_t kHashBits = 16;
constexpr size_t kMaxChainDepth = 32;

inline uint32_t HashQuad(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

Result<Bytes> Lz77Codec::Compress(const Bytes& input) const {
  Bytes out;
  const size_t n = input.size();
  if (n == 0) {
    return out;
  }

  std::vector<int64_t> head(1 << kHashBits, -1);
  std::vector<int64_t> prev(n, -1);

  size_t literal_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end > literal_start) {
      out.push_back(0x00);
      WriteVarint(&out, end - literal_start);
      out.insert(out.end(), input.begin() + literal_start,
                 input.begin() + end);
    }
  };

  size_t i = 0;
  while (i < n) {
    size_t best_len = 0;
    size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      const uint32_t h = HashQuad(input.data() + i);
      int64_t candidate = head[h];
      size_t depth = 0;
      while (candidate >= 0 && depth < kMaxChainDepth &&
             i - static_cast<size_t>(candidate) <= kWindowSize) {
        const size_t cand = static_cast<size_t>(candidate);
        const size_t limit = std::min(kMaxMatch, n - i);
        size_t len = 0;
        while (len < limit && input[cand + len] == input[i + len]) {
          ++len;
        }
        if (len >= kMinMatch && len > best_len) {
          best_len = len;
          best_dist = i - cand;
          if (len == kMaxMatch) {
            break;
          }
        }
        candidate = prev[cand];
        ++depth;
      }
    }

    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(0x01);
      WriteVarint(&out, best_len);
      WriteVarint(&out, best_dist);
      // Insert hash entries for all covered positions so later matches can
      // reference inside this match.
      const size_t match_end = i + best_len;
      while (i < match_end) {
        if (i + kMinMatch <= n) {
          const uint32_t h = HashQuad(input.data() + i);
          prev[i] = head[h];
          head[h] = static_cast<int64_t>(i);
        }
        ++i;
      }
      literal_start = i;
    } else {
      if (i + kMinMatch <= n) {
        const uint32_t h = HashQuad(input.data() + i);
        prev[i] = head[h];
        head[h] = static_cast<int64_t>(i);
      }
      ++i;
    }
  }
  flush_literals(n);
  return out;
}

Result<Bytes> Lz77Codec::Decompress(const Bytes& input,
                                    size_t max_output) const {
  Bytes out;
  size_t pos = 0;
  while (pos < input.size()) {
    const uint8_t tag = input[pos++];
    if (tag == 0x00) {
      MMLIB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(input, &pos));
      if (pos + len > input.size()) {
        return Status::Corruption("LZ77 literal run truncated");
      }
      if (len > max_output - out.size()) {
        return Status::Corruption("LZ77 output exceeds limit");
      }
      out.insert(out.end(), input.begin() + pos, input.begin() + pos + len);
      pos += len;
    } else if (tag == 0x01) {
      MMLIB_ASSIGN_OR_RETURN(uint64_t len, ReadVarint(input, &pos));
      MMLIB_ASSIGN_OR_RETURN(uint64_t dist, ReadVarint(input, &pos));
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("LZ77 match distance out of range");
      }
      if (len > max_output - out.size()) {
        return Status::Corruption("LZ77 output exceeds limit");
      }
      // Byte-by-byte copy: matches may overlap their own output.
      size_t src = out.size() - dist;
      for (uint64_t k = 0; k < len; ++k) {
        out.push_back(out[src + k]);
      }
    } else {
      return Status::Corruption("invalid LZ77 token tag");
    }
  }
  return out;
}

}  // namespace mmlib
