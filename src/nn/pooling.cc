#include "nn/pooling.h"

#include "tensor/validate.h"
#include <limits>

namespace mmlib::nn {

MaxPool2d::MaxPool2d(std::string name, int64_t kernel_size, int64_t stride,
                     int64_t padding)
    : Layer(std::move(name)),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding) {}

Result<Tensor> MaxPool2d::Forward(const std::vector<const Tensor*>& inputs,
                                  ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 4) {
    return Status::InvalidArgument("maxpool " + name_ + ": bad input shape");
  }
  input_shape_ = x.shape();
  const int64_t batch = x.shape().dim(0);
  const int64_t channels = x.shape().dim(1);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t out_h = (height + 2 * padding_ - kernel_size_) / stride_ + 1;
  const int64_t out_w = (width + 2 * padding_ - kernel_size_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("maxpool " + name_ + ": input too small");
  }

  Tensor y(Shape{batch, channels, out_h, out_w});
  argmax_.assign(static_cast<size_t>(y.numel()), -1);
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = x.data() + ((n * channels + c) * height) * width;
      const int64_t plane_base = ((n * channels + c) * height) * width;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < kernel_size_; ++ky) {
            const int64_t yy = oy * stride_ - padding_ + ky;
            if (yy < 0 || yy >= height) {
              continue;
            }
            for (int64_t kx = 0; kx < kernel_size_; ++kx) {
              const int64_t xx = ox * stride_ - padding_ + kx;
              if (xx < 0 || xx >= width) {
                continue;
              }
              const float v = plane[yy * width + xx];
              if (v > best) {
                best = v;
                best_idx = plane_base + yy * width + xx;
              }
            }
          }
          y.data()[out_idx] = best;
          argmax_[out_idx] = best_idx;
          ++out_idx;
        }
      }
    }
  }
  return y;
}

Result<std::vector<Tensor>> MaxPool2d::Backward(const Tensor& grad_output,
                                                ExecutionContext* ctx) {
  (void)ctx;
  Tensor grad_input(input_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    const int64_t src = argmax_[i];
    if (src >= 0) {
      grad_input.data()[src] += grad_output.data()[i];
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

AvgPool2d::AvgPool2d(std::string name, int64_t kernel_size, int64_t stride,
                     int64_t padding)
    : Layer(std::move(name)),
      kernel_size_(kernel_size),
      stride_(stride),
      padding_(padding) {}

Result<Tensor> AvgPool2d::Forward(const std::vector<const Tensor*>& inputs,
                                  ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 4) {
    return Status::InvalidArgument("avgpool " + name_ + ": bad input shape");
  }
  input_shape_ = x.shape();
  const int64_t batch = x.shape().dim(0);
  const int64_t channels = x.shape().dim(1);
  const int64_t height = x.shape().dim(2);
  const int64_t width = x.shape().dim(3);
  const int64_t out_h = (height + 2 * padding_ - kernel_size_) / stride_ + 1;
  const int64_t out_w = (width + 2 * padding_ - kernel_size_) / stride_ + 1;
  if (out_h <= 0 || out_w <= 0) {
    return Status::InvalidArgument("avgpool " + name_ + ": input too small");
  }
  const float inv_window =
      1.0f / static_cast<float>(kernel_size_ * kernel_size_);

  Tensor y(Shape{batch, channels, out_h, out_w});
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* plane = x.data() + ((n * channels + c) * height) * width;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          float sum = 0.0f;
          for (int64_t ky = 0; ky < kernel_size_; ++ky) {
            const int64_t yy = oy * stride_ - padding_ + ky;
            if (yy < 0 || yy >= height) {
              continue;
            }
            for (int64_t kx = 0; kx < kernel_size_; ++kx) {
              const int64_t xx = ox * stride_ - padding_ + kx;
              if (xx >= 0 && xx < width) {
                sum += plane[yy * width + xx];
              }
            }
          }
          y.data()[out_idx++] = sum * inv_window;
        }
      }
    }
  }
  return y;
}

Result<std::vector<Tensor>> AvgPool2d::Backward(const Tensor& grad_output,
                                                ExecutionContext* ctx) {
  (void)ctx;
  const int64_t batch = input_shape_.dim(0);
  const int64_t channels = input_shape_.dim(1);
  const int64_t height = input_shape_.dim(2);
  const int64_t width = input_shape_.dim(3);
  const int64_t out_h = grad_output.shape().dim(2);
  const int64_t out_w = grad_output.shape().dim(3);
  const float inv_window =
      1.0f / static_cast<float>(kernel_size_ * kernel_size_);

  Tensor grad_input(input_shape_);
  int64_t out_idx = 0;
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      float* plane =
          grad_input.data() + ((n * channels + c) * height) * width;
      for (int64_t oy = 0; oy < out_h; ++oy) {
        for (int64_t ox = 0; ox < out_w; ++ox) {
          const float g = grad_output.data()[out_idx++] * inv_window;
          for (int64_t ky = 0; ky < kernel_size_; ++ky) {
            const int64_t yy = oy * stride_ - padding_ + ky;
            if (yy < 0 || yy >= height) {
              continue;
            }
            for (int64_t kx = 0; kx < kernel_size_; ++kx) {
              const int64_t xx = ox * stride_ - padding_ + kx;
              if (xx >= 0 && xx < width) {
                plane[yy * width + xx] += g;
              }
            }
          }
        }
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

Result<Tensor> GlobalAvgPool::Forward(const std::vector<const Tensor*>& inputs,
                                      ExecutionContext* ctx) {
  (void)ctx;
  MMLIB_RETURN_IF_ERROR(check::ValidateArity(inputs, 1, name_));
  const Tensor& x = *inputs[0];
  if (x.shape().rank() != 4) {
    return Status::InvalidArgument("global_avg_pool " + name_ +
                                   ": bad input shape");
  }
  input_shape_ = x.shape();
  const int64_t batch = x.shape().dim(0);
  const int64_t channels = x.shape().dim(1);
  const int64_t plane = x.shape().dim(2) * x.shape().dim(3);
  Tensor y(Shape{batch, channels});
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float* p = x.data() + (n * channels + c) * plane;
      double sum = 0.0;
      for (int64_t i = 0; i < plane; ++i) {
        sum += p[i];
      }
      y.data()[n * channels + c] = static_cast<float>(sum / plane);
    }
  }
  return y;
}

Result<std::vector<Tensor>> GlobalAvgPool::Backward(const Tensor& grad_output,
                                                    ExecutionContext* ctx) {
  (void)ctx;
  const int64_t batch = input_shape_.dim(0);
  const int64_t channels = input_shape_.dim(1);
  const int64_t plane = input_shape_.dim(2) * input_shape_.dim(3);
  Tensor grad_input(input_shape_);
  for (int64_t n = 0; n < batch; ++n) {
    for (int64_t c = 0; c < channels; ++c) {
      const float g =
          grad_output.data()[n * channels + c] / static_cast<float>(plane);
      float* q = grad_input.data() + (n * channels + c) * plane;
      for (int64_t i = 0; i < plane; ++i) {
        q[i] = g;
      }
    }
  }
  std::vector<Tensor> grads;
  grads.push_back(std::move(grad_input));
  return grads;
}

}  // namespace mmlib::nn
