#pragma once

#include <cstdint>
#include <string>

#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "simnet/network.h"
#include "util/clock.h"

namespace mmlib::util {
class ThreadPool;
}

namespace mmlib::core {

/// Document collections used by all approaches.
inline constexpr const char* kModelsCollection = "models";
inline constexpr const char* kCodeCollection = "code";
inline constexpr const char* kEnvironmentsCollection = "environments";
inline constexpr const char* kProvenanceCollection = "provenance";

/// Approach tags stored in model documents.
inline constexpr const char* kApproachBaseline = "baseline";
inline constexpr const char* kApproachParamUpdate = "param_update";
inline constexpr const char* kApproachProvenance = "provenance";

/// The storage backends a save service operates against: a document database
/// for metadata and a shared file store for binary payloads (paper Section
/// 3.1 "Model Storage"). `network` is optional; when set, its virtual
/// transfer time is included in measured durations (distributed setups).
struct StorageBackends {
  docstore::DocumentStore* docs = nullptr;
  filestore::FileStore* files = nullptr;
  simnet::Network* network = nullptr;
  /// Pool for parallel payload encoding/decoding and Merkle-leaf hashing;
  /// the process-wide pool when null.
  util::ThreadPool* pool = nullptr;
  /// Write-ahead save journal. When set, SaveTransaction logs every write
  /// intent durably before writing, and the persistent stores roll
  /// half-finished saves back on reopen (crash consistency). Null keeps the
  /// in-process-rollback-only behavior (fine for in-memory stores).
  persist::SaveJournal* journal = nullptr;

  size_t TotalStoredBytes() const {
    return docs->TotalStoredBytes() + files->TotalStoredBytes();
  }
};

/// Measures the cost of one save/recover operation: wall-clock seconds plus
/// any simulated network transfer seconds consumed while the meter ran.
class CostMeter {
 public:
  explicit CostMeter(const StorageBackends& backends)
      : network_(backends.network),
        start_bytes_(backends.TotalStoredBytes()),
        backends_(backends) {
    start_network_seconds_ =
        network_ != nullptr ? network_->TotalTransferSeconds() : 0.0;
  }

  /// Elapsed seconds: wall time + network virtual time.
  double ElapsedSeconds() const {
    double seconds = stopwatch_.ElapsedSeconds();
    if (network_ != nullptr) {
      seconds += network_->TotalTransferSeconds() - start_network_seconds_;
    }
    return seconds;
  }

  /// Bytes added to (or removed from) the stores since construction.
  int64_t StoredBytesDelta() const {
    return static_cast<int64_t>(backends_.TotalStoredBytes()) -
           static_cast<int64_t>(start_bytes_);
  }

 private:
  Stopwatch stopwatch_;
  simnet::Network* network_;
  double start_network_seconds_ = 0.0;
  size_t start_bytes_;
  StorageBackends backends_;
};

/// Outcome of saving one model.
struct SaveResult {
  std::string model_id;
  /// Time-to-save: extraction + persistence (paper Section 4.3).
  double tts_seconds = 0.0;
  /// Storage consumed by this model, excluding its base model (Section 4.2).
  int64_t storage_bytes = 0;
};

/// Per-step timing of a recovery (paper Figure 12): loading the model data,
/// recovering the model from it, verifying the environment, verifying the
/// recovered parameters.
struct RecoverBreakdown {
  double load_seconds = 0.0;
  double recover_seconds = 0.0;
  double check_env_seconds = 0.0;
  double verify_seconds = 0.0;

  double TotalSeconds() const {
    return load_seconds + recover_seconds + check_env_seconds +
           verify_seconds;
  }
};

/// Controls optional recovery steps.
struct RecoverOptions {
  /// Compare the recovered parameter hash against the stored checksum.
  bool verify_checksum = true;
  /// Compare the current environment against the saved one.
  bool check_environment = true;
};

}  // namespace mmlib::core

