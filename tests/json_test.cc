#include <gtest/gtest.h>

#include "json/json.h"
#include "util/random.h"

namespace mmlib::json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(1.5).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value::MakeArray().is_array());
  EXPECT_TRUE(Value::MakeObject().is_object());
}

TEST(JsonValueTest, ObjectAccessors) {
  Value doc = Value::MakeObject();
  doc.Set("name", "resnet");
  doc.Set("params", 11689512);
  doc.Set("partial", true);
  doc.Set("ratio", 0.25);

  EXPECT_EQ(doc.GetString("name").value(), "resnet");
  EXPECT_EQ(doc.GetInt("params").value(), 11689512);
  EXPECT_TRUE(doc.GetBool("partial").value());
  EXPECT_DOUBLE_EQ(doc.GetNumber("ratio").value(), 0.25);
  EXPECT_TRUE(doc.Has("name"));
  EXPECT_FALSE(doc.Has("missing"));
}

TEST(JsonValueTest, AccessorsReportTypeMismatch) {
  Value doc = Value::MakeObject();
  doc.Set("n", 3);
  EXPECT_EQ(doc.GetString("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(doc.GetBool("n").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(doc.GetString("missing").status().code(), StatusCode::kNotFound);
}

TEST(JsonValueTest, FindMemberTreatsNullAsAbsent) {
  Value doc = Value::MakeObject();
  doc.Set("explicit_null", Value());
  doc.Set("present", 1);
  EXPECT_EQ(doc.FindMember("explicit_null"), nullptr);
  EXPECT_NE(doc.FindMember("present"), nullptr);
  EXPECT_EQ(doc.FindMember("absent"), nullptr);
}

TEST(JsonValueTest, CanonicalDumpSortsKeys) {
  Value doc = Value::MakeObject();
  doc.Set("zebra", 1);
  doc.Set("alpha", 2);
  EXPECT_EQ(doc.Dump(), R"({"alpha":2,"zebra":1})");
}

TEST(JsonValueTest, DumpEscapesSpecialCharacters) {
  Value v(std::string("line\nquote\"back\\slash\ttab"));
  EXPECT_EQ(v.Dump(), "\"line\\nquote\\\"back\\\\slash\\ttab\"");
}

TEST(JsonValueTest, IntegersDumpWithoutExponent) {
  EXPECT_EQ(Value(int64_t{1234567890123}).Dump(), "1234567890123");
  EXPECT_EQ(Value(-5).Dump(), "-5");
  EXPECT_EQ(Value(0.5).Dump(), "0.5");
}

TEST(JsonValueTest, DeepEquality) {
  Value a = Value::MakeObject();
  a.Set("list", Value::Array{Value(1), Value("two"), Value()});
  Value b = Value::MakeObject();
  b.Set("list", Value::Array{Value(1), Value("two"), Value()});
  EXPECT_TRUE(a == b);
  b.as_object()["list"].as_array().push_back(Value(false));
  EXPECT_FALSE(a == b);
}

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(Parse("null").value().is_null());
  EXPECT_TRUE(Parse("true").value().as_bool());
  EXPECT_FALSE(Parse("false").value().as_bool());
  EXPECT_DOUBLE_EQ(Parse("-12.5e2").value().as_number(), -1250.0);
  EXPECT_EQ(Parse("\"hi\"").value().as_string(), "hi");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  auto result = Parse(R"({"a": [1, {"b": "c"}, null], "d": {}})");
  ASSERT_TRUE(result.ok());
  const Value& doc = result.value();
  const Value::Array& a = doc.FindMember("a")->as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[1].GetString("b").value(), "c");
  EXPECT_TRUE(a[2].is_null());
}

TEST(JsonParseTest, HandlesWhitespace) {
  auto result = Parse("  {\n\t\"k\" :  1 ,\r\n \"l\": [ ] }  ");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->GetInt("k").value(), 1);
}

TEST(JsonParseTest, UnicodeEscapes) {
  auto result = Parse(R"("Aé€")");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->as_string(), "A\xc3\xa9\xe2\x82\xac");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "[1 2]", "tru", "01a",
        "\"unterminated", "{\"a\":1} trailing", "{'single':1}",
        "\"bad \\u12zz escape\""}) {
    EXPECT_FALSE(Parse(bad).ok()) << "input: " << bad;
  }
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(400, '[');
  deep += std::string(400, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonParseTest, PrettyDumpReparses) {
  Value doc = Value::MakeObject();
  doc.Set("x", Value::Array{Value(1), Value(2)});
  doc.Set("y", "z");
  auto reparsed = Parse(doc.DumpPretty());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(reparsed.value() == doc);
}

// Property: randomly generated documents survive a dump/parse roundtrip.

Value RandomValue(Rng* rng, int depth) {
  const uint64_t kind = rng->NextBelow(depth > 3 ? 4 : 6);
  switch (kind) {
    case 0:
      return Value();
    case 1:
      return Value(rng->NextBelow(2) == 0);
    case 2:
      return Value(static_cast<int64_t>(rng->NextBelow(1 << 30)) -
                   (1 << 29));
    case 3: {
      std::string s;
      const uint64_t len = rng->NextBelow(12);
      for (uint64_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng->NextBelow(26)));
      }
      if (rng->NextBelow(4) == 0) {
        s += "\"\\\n\t";
      }
      return Value(std::move(s));
    }
    case 4: {
      Value::Array array;
      const uint64_t len = rng->NextBelow(5);
      for (uint64_t i = 0; i < len; ++i) {
        array.push_back(RandomValue(rng, depth + 1));
      }
      return Value(std::move(array));
    }
    default: {
      Value doc = Value::MakeObject();
      const uint64_t len = rng->NextBelow(5);
      for (uint64_t i = 0; i < len; ++i) {
        doc.Set("k" + std::to_string(rng->NextBelow(100)),
                RandomValue(rng, depth + 1));
      }
      return doc;
    }
  }
}

class JsonRoundtripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JsonRoundtripProperty, DumpParseRoundtrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value original = RandomValue(&rng, 0);
    auto compact = Parse(original.Dump());
    ASSERT_TRUE(compact.ok()) << original.Dump();
    EXPECT_TRUE(compact.value() == original) << original.Dump();
    auto pretty = Parse(original.DumpPretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_TRUE(pretty.value() == original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundtripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace mmlib::json
