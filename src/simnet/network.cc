#include "simnet/network.h"

namespace mmlib::simnet {

void Network::set_fault_plan(const FaultPlan& plan) {
  fault_plan_ = plan;
  fault_rng_ = Rng(plan.seed);
  drop_count_ = 0;
  timeout_count_ = 0;
  corruption_count_ = 0;
}

double Network::Transfer(uint64_t bytes) {
  const double seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(seconds);
  total_bytes_ += bytes;
  ++message_count_;
  return seconds;
}

TransferAttempt Network::TryTransfer(uint64_t bytes) {
  TransferAttempt attempt;
  if (!fault_plan_.active()) {
    attempt.seconds = Transfer(bytes);
    return attempt;
  }
  ++message_count_;
  // One uniform draw per message keeps the fault stream's consumption a pure
  // function of the message sequence, whatever the outcome.
  const double u = fault_rng_.NextDouble();
  if (u < fault_plan_.drop_probability) {
    ++drop_count_;
    attempt.seconds = link_.latency_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::Unavailable("message dropped in flight");
    return attempt;
  }
  if (u < fault_plan_.drop_probability + fault_plan_.timeout_probability) {
    ++timeout_count_;
    attempt.seconds = fault_plan_.timeout_seconds;
    clock_.AdvanceSeconds(attempt.seconds);
    attempt.status = Status::DeadlineExceeded("message timed out");
    return attempt;
  }
  attempt.seconds = link_.TransferSeconds(bytes);
  clock_.AdvanceSeconds(attempt.seconds);
  total_bytes_ += bytes;
  if (u < fault_plan_.drop_probability + fault_plan_.timeout_probability +
              fault_plan_.corrupt_probability) {
    ++corruption_count_;
    attempt.corrupted = true;
  }
  return attempt;
}

void Network::CorruptPayload(Bytes* payload) {
  if (payload == nullptr || payload->empty()) {
    return;
  }
  const size_t position = fault_rng_.NextBelow(payload->size());
  (*payload)[position] ^= static_cast<uint8_t>(1 + fault_rng_.NextBelow(255));
}

void Network::ChargeSeconds(double seconds) {
  clock_.AdvanceSeconds(seconds);
}

void Network::Reset() {
  clock_ = VirtualClock();
  fault_rng_ = Rng(fault_plan_.seed);
  total_bytes_ = 0;
  message_count_ = 0;
  drop_count_ = 0;
  timeout_count_ = 0;
  corruption_count_ = 0;
}

}  // namespace mmlib::simnet
