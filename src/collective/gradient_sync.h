#pragma once

#include <cstdint>
#include <vector>

#include "collective/ring.h"
#include "nn/model.h"
#include "util/status.h"

namespace mmlib::collective {

/// Bridges a training step to the ring: flattens the model's trainable
/// gradients, runs the session's AllReduce over them, and writes the
/// reduced mean back into the model before the optimizer steps.
///
/// Data-parallel workers in this simulation are bit-identical replicas —
/// each computes the full-batch gradient while the virtual clock charges it
/// only its 1/K batch shard — so every ring worker contributes the same
/// gradient buffer. The synchronizer therefore passes K pointers to one
/// flattened buffer; the session's balanced-tree mean reproduces that
/// gradient bit for bit when the full cohort commits, and deterministically
/// rescales it when the cohort is degraded.
class GradientSynchronizer {
 public:
  explicit GradientSynchronizer(RingSession* session) : session_(session) {}

  /// One synchronization barrier: all-reduces the model's trainable
  /// gradients across the session's cohort for `step` (1-based within the
  /// session's current update). Leaves the model untouched on error.
  /// CrashException from an armed collective crash site unwinds through
  /// here like a process kill would.
  Status Sync(nn::Model* model, int64_t step);

  RingSession* session() const { return session_; }

 private:
  RingSession* session_;
  std::vector<float> flat_;  // reused across steps
};

}  // namespace mmlib::collective
