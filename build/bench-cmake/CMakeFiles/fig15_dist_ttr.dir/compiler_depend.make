# Empty compiler generated dependencies file for fig15_dist_ttr.
# This may be replaced when dependencies are built.
