/// Reproduces paper Figure 4: number of hash comparisons needed to locate
/// the changed layers via the Merkle tree, versus a naive layer-by-layer
/// scan. Paper values with the last two layers changed: 8 layers -> 7,
/// 64 -> 13, 128 -> 15.
#include <cstdio>

#include "bench/bench_common.h"
#include "hash/merkle_tree.h"

using namespace mmlib;

int main() {
  bench::PrintHeader("Figure 4",
                     "Merkle-tree comparisons to find changed layers",
                     "Last two layers changed, as in the paper's example.");

  TablePrinter table({"layers", "merkle comparisons", "naive comparisons",
                      "paper (merkle)"});
  struct PaperRow {
    size_t layers;
    const char* paper;
  };
  for (const PaperRow row : {PaperRow{8, "7"}, PaperRow{16, "-"},
                             PaperRow{32, "-"}, PaperRow{64, "13"},
                             PaperRow{128, "15"}, PaperRow{256, "-"}}) {
    std::vector<Digest> leaves;
    for (size_t i = 0; i < row.layers; ++i) {
      leaves.push_back(Sha256::Hash("layer-" + std::to_string(i)));
    }
    const MerkleTree before = MerkleTree::Build(leaves).value();
    leaves[row.layers - 2] = Sha256::Hash("changed-a");
    leaves[row.layers - 1] = Sha256::Hash("changed-b");
    const MerkleTree after = MerkleTree::Build(leaves).value();
    const MerkleDiff diff = MerkleTree::Diff(before, after).value();
    table.AddRow({std::to_string(row.layers),
                  std::to_string(diff.comparisons),
                  std::to_string(before.NaiveComparisonCount()), row.paper});
  }
  table.Print(std::cout);
  return 0;
}
