#pragma once

#include "core/save_service.h"

namespace mmlib::core {

/// Baseline approach (BA, paper Section 3.1): saves a complete snapshot of
/// every model — metadata, architecture code, environment, and the full
/// serialized parameters — ignoring any similarity to the base model.
class BaselineSaveService : public SaveService {
 public:
  explicit BaselineSaveService(StorageBackends backends)
      : SaveService(backends) {}

  std::string_view approach() const override { return kApproachBaseline; }

  Result<SaveResult> DoSaveModel(const SaveRequest& request) override;
};

}  // namespace mmlib::core

