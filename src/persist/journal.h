#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace mmlib::persist {

/// Store kinds a journal op can target; persistent stores replay the ops of
/// their own kind on reopen.
inline constexpr const char* kJournalFileStore = "files";
inline constexpr const char* kJournalDocStore = "docs";

/// One journaled write intent: the id a save is about to write under.
/// `collection` is empty for file-store ops.
struct JournalOp {
  std::string store;
  std::string collection;
  std::string id;
};

/// Write-ahead intent journal for multi-step saves. A SaveTransaction in
/// journaled mode appends each write's id *before* the write happens, all
/// through AtomicWriteFile, so after a crash the journal names every
/// file/document a half-finished save may have left behind. On reopen the
/// persistent stores call Replay, which rolls the uncommitted leftovers
/// back (or keeps a committed save and just drops its record) — the stores
/// end up exactly as if the save had never started or had fully finished.
///
/// One record per transaction, `root/txn-<n>.json`:
///   {"committed": false, "ops": [{"store": "files", "collection": "",
///                                 "id": "file-0-ab12cd34"}, ...]}
/// Every mutation rewrites the record atomically, so records are never torn
/// and replay is idempotent: undo tolerates NotFound (the write may not
/// have happened, or a previous interrupted replay already removed it), and
/// a record only disappears after all of its ops are resolved. Crashing
/// during recovery therefore just means recovery runs again.
///
/// Not thread-safe: saves are serial per journal, like the save services.
class SaveJournal {
 public:
  /// Opens (creates if needed) the journal directory and loads pending
  /// records left by a previous process. Leftover `.tmp` partials from a
  /// crashed record write are discarded.
  static Result<std::unique_ptr<SaveJournal>> Open(const std::string& root);

  SaveJournal(const SaveJournal&) = delete;
  SaveJournal& operator=(const SaveJournal&) = delete;

  /// Starts a transaction: durably creates an empty record and returns its
  /// id. Crash site "journal.begin".
  Result<std::string> Begin();

  /// Durably appends one write intent to an open record — call *before*
  /// performing the write it describes. Crash site "journal.append".
  Status AppendOp(const std::string& txn_id, const JournalOp& op);

  /// Durably marks the record committed: from here on, replay *keeps* the
  /// transaction's writes. Crash site "journal.commit".
  Status MarkCommitted(const std::string& txn_id);

  /// Removes a record (normal end of a committed transaction, or after an
  /// in-process rollback). Missing records are fine — replay may have
  /// removed them already.
  Status Close(const std::string& txn_id);

  /// Undo callback for one op; must return OK or NotFound for an op whose
  /// write never happened (both are treated as undone).
  using UndoFn = std::function<Status(const JournalOp&)>;

  /// Replays pending records for one store kind: committed records are
  /// dropped (their writes stay), uncommitted ops of `store_kind` are
  /// undone via `undo` and stripped from the record; a record vanishes once
  /// no ops of any kind remain. Safe to call repeatedly and safe to crash
  /// in — crash site "journal.replay.op" fires before each undo.
  Status Replay(const std::string& store_kind, const UndoFn& undo);

  /// Records still pending (not yet resolved by Close/Replay). Zero after
  /// all stores sharing the journal have replayed.
  size_t PendingRecordCount() const { return records_.size(); }

  const std::string& root() const { return root_; }

 private:
  struct Record {
    bool committed = false;
    std::vector<JournalOp> ops;
  };

  explicit SaveJournal(std::string root);

  std::string PathFor(const std::string& txn_id) const;
  Status WriteRecord(const std::string& txn_id, const Record& record);
  Status RemoveRecord(const std::string& txn_id);
  Status LoadExisting();

  std::string root_;
  uint64_t next_txn_ = 0;
  std::map<std::string, Record> records_;
};

}  // namespace mmlib::persist
