#pragma once

#include <memory>

#include "core/baseline.h"
#include "core/param_update.h"
#include "core/provenance.h"
#include "core/save_service.h"

namespace mmlib::core {

/// Tuning knobs of the adaptive heuristic.
struct AdaptiveOptions {
  /// Weight applied to the MPA's storage estimate to account for its much
  /// higher time-to-recover (the storage-retraining tradeoff, paper
  /// Section 4.7). 1.0 chooses purely by storage; larger values make the
  /// MPA progressively less attractive.
  double mpa_recover_penalty = 1.0;
  ProvenanceOptions provenance;
};

/// Adaptive approach (the future-work direction sketched in paper Section
/// 4.7): chooses per model whichever approach (BA, PUA, or MPA) is expected
/// to consume the least storage, based on the observation that the BA and
/// PUA costs depend on the (changed) model parameters while the MPA cost
/// depends on the training dataset.
///
/// All three underlying approaches share the same document schema, so a
/// single ModelRecoverer recovers adaptive chains transparently — including
/// chains that mix approaches.
class AdaptiveSaveService : public SaveService {
 public:
  AdaptiveSaveService(StorageBackends backends, AdaptiveOptions options);
  explicit AdaptiveSaveService(StorageBackends backends)
      : AdaptiveSaveService(backends, AdaptiveOptions{}) {}

  std::string_view approach() const override { return "adaptive"; }

  Result<SaveResult> DoSaveModel(const SaveRequest& request) override;

  /// The approach selected by the most recent SaveModel call.
  std::string_view last_choice() const { return last_choice_; }

  /// Storage estimates computed for the most recent SaveModel call (bytes).
  struct Estimates {
    size_t baseline = 0;
    size_t param_update = 0;
    size_t provenance = 0;  // 0 when no provenance data was supplied
  };
  const Estimates& last_estimates() const { return last_estimates_; }

 private:
  /// Estimates the parameter-update payload by diffing against the base
  /// model's persisted Merkle tree; falls back to the full size when the
  /// base has no usable tree.
  Result<size_t> EstimateUpdateBytes(const SaveRequest& request);

  AdaptiveOptions options_;
  BaselineSaveService baseline_;
  ParamUpdateSaveService param_update_;
  ProvenanceSaveService provenance_service_;
  std::string_view last_choice_ = "";
  Estimates last_estimates_;
};

}  // namespace mmlib::core

