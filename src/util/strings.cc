#include "util/strings.h"

#include <cstdint>
#include <cstdio>

namespace mmlib {

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      out += delim;
    }
    out += pieces[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         (s[begin] == ' ' || s[begin] == '\t' || s[begin] == '\n' ||
          s[begin] == '\r')) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && (s[end - 1] == ' ' || s[end - 1] == '\t' ||
                         s[end - 1] == '\n' || s[end - 1] == '\r')) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string FormatBytes(uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buffer[32];
  if (unit == 0) {
    std::snprintf(buffer, sizeof(buffer), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, kUnits[unit]);
  }
  return buffer;
}

std::string FormatSeconds(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f s", seconds);
  return buffer;
}

std::string PadLeft(std::string_view s, size_t width) {
  std::string out;
  if (s.size() < width) {
    out.assign(width - s.size(), ' ');
  }
  out += s;
  return out;
}

std::string PadRight(std::string_view s, size_t width) {
  std::string out(s);
  if (out.size() < width) {
    out.append(width - out.size(), ' ');
  }
  return out;
}

}  // namespace mmlib
