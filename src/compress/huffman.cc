#include "compress/huffman.h"

#include <algorithm>
#include <cstring>
#include <queue>

namespace mmlib::huffman {

namespace {

constexpr int kMaxCodeLength = 15;
constexpr int kSymbols = 256;

/// Computes Huffman code lengths for the given frequencies; zero-frequency
/// symbols get length 0. Lengths are capped at kMaxCodeLength by scaling
/// frequencies down and rebuilding when the tree gets too deep.
void ComputeCodeLengths(uint64_t freqs[kSymbols], uint8_t lengths[kSymbols]) {
  struct Node {
    uint64_t weight;
    int symbol;  // -1 for internal
    int left = -1;
    int right = -1;
  };

  for (;;) {
    std::vector<Node> nodes;
    using QueueEntry = std::pair<uint64_t, int>;  // (weight, node index)
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        queue;
    for (int s = 0; s < kSymbols; ++s) {
      if (freqs[s] > 0) {
        nodes.push_back(Node{freqs[s], s});
        queue.push({freqs[s], static_cast<int>(nodes.size()) - 1});
      }
    }
    std::memset(lengths, 0, kSymbols);
    if (nodes.empty()) {
      return;
    }
    if (nodes.size() == 1) {
      lengths[nodes[0].symbol] = 1;
      return;
    }
    while (queue.size() > 1) {
      const auto [wa, a] = queue.top();
      queue.pop();
      const auto [wb, b] = queue.top();
      queue.pop();
      nodes.push_back(Node{wa + wb, -1, a, b});
      queue.push({wa + wb, static_cast<int>(nodes.size()) - 1});
    }

    // Assign depths iteratively from the root.
    int max_depth = 0;
    std::vector<std::pair<int, int>> stack;  // (node, depth)
    stack.push_back({queue.top().second, 0});
    while (!stack.empty()) {
      const auto [index, depth] = stack.back();
      stack.pop_back();
      const Node& node = nodes[index];
      if (node.symbol >= 0) {
        lengths[node.symbol] = static_cast<uint8_t>(depth);
        max_depth = std::max(max_depth, depth);
      } else {
        stack.push_back({node.left, depth + 1});
        stack.push_back({node.right, depth + 1});
      }
    }
    if (max_depth <= kMaxCodeLength) {
      return;
    }
    // Flatten the distribution and retry (rare: needs very skewed input).
    for (int s = 0; s < kSymbols; ++s) {
      if (freqs[s] > 0) {
        freqs[s] = freqs[s] / 2 + 1;
      }
    }
  }
}

/// Assigns canonical codes (numerically increasing with (length, symbol)).
void AssignCanonicalCodes(const uint8_t lengths[kSymbols],
                          uint16_t codes[kSymbols]) {
  uint16_t length_count[kMaxCodeLength + 1] = {};
  for (int s = 0; s < kSymbols; ++s) {
    length_count[lengths[s]]++;
  }
  length_count[0] = 0;
  uint16_t next_code[kMaxCodeLength + 1] = {};
  uint16_t code = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code = static_cast<uint16_t>((code + length_count[len - 1]) << 1);
    next_code[len] = code;
  }
  for (int s = 0; s < kSymbols; ++s) {
    if (lengths[s] > 0) {
      codes[s] = next_code[lengths[s]]++;
    }
  }
}

class BitWriter {
 public:
  explicit BitWriter(Bytes* out) : out_(out) {}

  void Write(uint32_t bits, int count) {
    for (int i = count - 1; i >= 0; --i) {
      buffer_ = static_cast<uint8_t>((buffer_ << 1) | ((bits >> i) & 1));
      if (++bit_count_ == 8) {
        out_->push_back(buffer_);
        buffer_ = 0;
        bit_count_ = 0;
      }
    }
  }

  void Flush() {
    if (bit_count_ > 0) {
      out_->push_back(static_cast<uint8_t>(buffer_ << (8 - bit_count_)));
      buffer_ = 0;
      bit_count_ = 0;
    }
  }

 private:
  Bytes* out_;
  uint8_t buffer_ = 0;
  int bit_count_ = 0;
};

class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<int> ReadBit() {
    const size_t byte = pos_ / 8;
    if (byte >= size_) {
      return Status::Corruption("Huffman bitstream truncated");
    }
    const int bit = (data_[byte] >> (7 - pos_ % 8)) & 1;
    ++pos_;
    return bit;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

Result<Bytes> Encode(const Bytes& input) {
  uint64_t freqs[kSymbols] = {};
  for (uint8_t b : input) {
    freqs[b]++;
  }
  uint8_t lengths[kSymbols];
  ComputeCodeLengths(freqs, lengths);
  uint16_t codes[kSymbols] = {};
  AssignCanonicalCodes(lengths, codes);

  BytesWriter header;
  header.WriteU64(input.size());
  // 256 code lengths, 4 bits each (lengths fit in 0..15).
  for (int s = 0; s < kSymbols; s += 2) {
    header.WriteU8(
        static_cast<uint8_t>((lengths[s] << 4) | lengths[s + 1]));
  }
  Bytes out = header.TakeBytes();

  BitWriter writer(&out);
  for (uint8_t b : input) {
    writer.Write(codes[b], lengths[b]);
  }
  writer.Flush();
  return out;
}

Result<Bytes> Decode(const Bytes& input, size_t max_output) {
  BytesReader reader(input);
  MMLIB_ASSIGN_OR_RETURN(uint64_t original_size, reader.ReadU64());
  if (original_size > max_output) {
    return Status::Corruption("Huffman payload size out of range");
  }
  // Even a degenerate 1-bit-per-symbol stream cannot produce more than
  // 8 symbols per remaining input byte; reject inflated size claims early
  // so the reserve below cannot exhaust memory.
  if (original_size / 8 > input.size()) {
    return Status::Corruption("Huffman payload size exceeds bitstream");
  }
  uint8_t lengths[kSymbols];
  for (int s = 0; s < kSymbols; s += 2) {
    MMLIB_ASSIGN_OR_RETURN(uint8_t packed, reader.ReadU8());
    lengths[s] = packed >> 4;
    lengths[s + 1] = packed & 0x0f;
  }

  // Canonical decoding tables: first code and first symbol index per length.
  uint16_t length_count[kMaxCodeLength + 1] = {};
  for (int s = 0; s < kSymbols; ++s) {
    length_count[lengths[s]]++;
  }
  length_count[0] = 0;
  // Symbols sorted by (length, symbol).
  std::vector<int> sorted_symbols;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    for (int s = 0; s < kSymbols; ++s) {
      if (lengths[s] == len) {
        sorted_symbols.push_back(s);
      }
    }
  }
  uint32_t first_code[kMaxCodeLength + 1] = {};
  uint32_t first_index[kMaxCodeLength + 1] = {};
  uint32_t code = 0;
  uint32_t index = 0;
  for (int len = 1; len <= kMaxCodeLength; ++len) {
    code = (code + length_count[len - 1]) << 1;
    first_code[len] = code;
    first_index[len] = index;
    index += length_count[len];
  }

  if (original_size > 0 && sorted_symbols.empty()) {
    return Status::Corruption("Huffman table empty for non-empty payload");
  }

  Bytes out;
  out.reserve(original_size);
  BitReader bits(input.data() + reader.offset(),
                 input.size() - reader.offset());
  for (uint64_t i = 0; i < original_size; ++i) {
    uint32_t value = 0;
    int len = 0;
    for (;;) {
      MMLIB_ASSIGN_OR_RETURN(int bit, bits.ReadBit());
      value = (value << 1) | static_cast<uint32_t>(bit);
      ++len;
      if (len > kMaxCodeLength) {
        return Status::Corruption("invalid Huffman code");
      }
      if (length_count[len] > 0 &&
          value < first_code[len] + length_count[len] &&
          value >= first_code[len]) {
        out.push_back(static_cast<uint8_t>(
            sorted_symbols[first_index[len] + (value - first_code[len])]));
        break;
      }
    }
  }
  return out;
}

}  // namespace mmlib::huffman
