#include "models/builders.h"

namespace mmlib::models::internal {

namespace {

/// MobileNetV2 inverted residual block: 1x1 expand -> 3x3 depthwise ->
/// 1x1 project, with a residual connection when stride is 1 and the channel
/// count is unchanged.
int64_t InvertedResidual(BuilderCtx* ctx, const std::string& name,
                         int64_t input, int64_t in_ch, int64_t out_ch,
                         int64_t stride, int64_t expand_ratio) {
  const int64_t hidden = in_ch * expand_ratio;
  int64_t node = input;
  if (expand_ratio != 1) {
    node = ConvBnRelu(ctx, name + ".expand", node, in_ch, hidden, 1, 1, 0,
                      /*groups=*/1, /*relu_clip=*/6.0f);
  }
  node = ConvBnRelu(ctx, name + ".depthwise", node, hidden, hidden, 3, stride,
                    1, /*groups=*/hidden, /*relu_clip=*/6.0f);
  node = ConvBn(ctx, name + ".project", node, hidden, out_ch, 1, 1, 0);
  if (stride == 1 && in_ch == out_ch) {
    node = ctx->model->AddNode(
        std::make_unique<nn::Add>(name + ".add", 2), {node, input});
  }
  return node;
}

}  // namespace

Result<nn::Model> BuildMobileNetV2(const ModelConfig& config) {
  if (config.arch != Architecture::kMobileNetV2) {
    return Status::InvalidArgument("BuildMobileNetV2: wrong architecture");
  }
  nn::Model model(std::string(ArchitectureName(config.arch)));
  Rng rng(config.init_seed);
  BuilderCtx ctx{&model, &rng, config.channel_divisor};

  // Inverted residual settings: expansion t, full-width channels c, repeat
  // count n, first stride s (Sandler et al. 2018, Table 2).
  struct Setting {
    int64_t t, c, n, s;
  };
  static constexpr Setting kSettings[] = {
      {1, 16, 1, 1}, {6, 24, 2, 2},  {6, 32, 3, 2}, {6, 64, 4, 2},
      {6, 96, 3, 1}, {6, 160, 3, 2}, {6, 320, 1, 1},
  };

  int64_t in_ch = ctx.Ch(32);
  int64_t node = ConvBnRelu(&ctx, "stem", nn::Model::kInputNode, 3, in_ch, 3,
                            2, 1, /*groups=*/1, /*relu_clip=*/6.0f);
  int block_index = 0;
  for (const Setting& s : kSettings) {
    const int64_t out_ch = ctx.Ch(s.c);
    for (int64_t i = 0; i < s.n; ++i) {
      const int64_t stride = i == 0 ? s.s : 1;
      node = InvertedResidual(&ctx,
                              "features." + std::to_string(block_index),
                              node, in_ch, out_ch, stride, s.t);
      in_ch = out_ch;
      ++block_index;
    }
  }
  const int64_t last_ch = ctx.Ch(1280);
  node = ConvBnRelu(&ctx, "head", node, in_ch, last_ch, 1, 1, 0,
                    /*groups=*/1, /*relu_clip=*/6.0f);
  node = model.AddNode(std::make_unique<nn::GlobalAvgPool>("avgpool"),
                       {node});
  node = model.AddNode(std::make_unique<nn::Dropout>("classifier.dropout",
                                                     0.2f),
                       {node});
  model.AddNode(std::make_unique<nn::Linear>("classifier.fc", last_ch,
                                             config.num_classes, &rng),
                {node});
  return model;
}

}  // namespace mmlib::models::internal
