#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/model.h"
#include "util/result.h"

namespace mmlib::models {

/// The five computer-vision architectures evaluated in the paper (Table 2).
enum class Architecture {
  kMobileNetV2,
  kGoogLeNet,
  kResNet18,
  kResNet50,
  kResNet152,
};

/// Stable name, e.g. "MobileNetV2".
std::string_view ArchitectureName(Architecture arch);

/// Parses an architecture name; inverse of ArchitectureName.
Result<Architecture> ArchitectureFromName(std::string_view name);

/// All five architectures in Table 2 order.
const std::vector<Architecture>& AllArchitectures();

/// Build configuration for a zoo model.
///
/// `channel_divisor` scales every channel width, the classifier width, and
/// the input resolution by 1/d, so parameter count and compute scale by
/// roughly 1/d^2 and 1/d^4 respectively. Divisor 1 reproduces the paper's
/// full-size architectures (Table 2 parameter counts); the default divisor 4
/// keeps experiments laptop-sized while preserving every parameter-count
/// *ratio* the paper's results depend on (see DESIGN.md Section 1).
struct ModelConfig {
  Architecture arch = Architecture::kResNet18;
  int64_t channel_divisor = 4;
  int64_t num_classes = 250;  // 1000 / channel_divisor at full scale
  int64_t image_size = 56;    // 224 / channel_divisor at full scale
  uint64_t init_seed = 0x5eed;
};

/// Default laptop-scale configuration (divisor 4).
ModelConfig DefaultConfig(Architecture arch);

/// The paper's full-size configuration (divisor 1, 1000 classes, 224 px).
ModelConfig FullScaleConfig(Architecture arch);

/// Instantiates the architecture with freshly initialized weights drawn
/// deterministically from config.init_seed.
Result<nn::Model> BuildModel(const ModelConfig& config);

/// True for the classifier-head layers — the layers that stay trainable in
/// the paper's *partially updated model version* setting ("only the last
/// fully connected layers", Section 4.1).
bool IsClassifierLayer(const nn::Layer& layer);

/// Freezes everything but the classifier head; returns the number of
/// trainable parameters left (Table 2 "Part. updated" column).
int64_t ApplyPartialUpdateFreeze(nn::Model* model);

/// Reference numbers from the paper's Table 2 (full scale).
struct Table2Row {
  std::string name;
  int64_t params;
  int64_t partially_updated_params;
  double size_mb;
};
const std::vector<Table2Row>& Table2Reference();

}  // namespace mmlib::models

