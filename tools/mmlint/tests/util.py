"""Shared helpers for the mmlint self-tests.

Fixture files live in tests/fixtures/ (outside the repo scan dirs, so the
real lint never sees them). Each fixture declares the repo-relative path it
pretends to live at with a `// fixture-path: src/...` comment on line 1;
rules are scoped by directory, so the pretend path selects which rules fire.

Golden findings are `<fixture>.expected.json`: a sorted list of
[rule, path, line] triples covering EVERY finding the fixture produces
(including unused-suppression entries for stale allows).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import List

from tools.mmlint import engine
from tools.mmlint.findings import Finding
from tools.mmlint.lexer import lex
from tools.mmlint.rules_token import RULES, FileContext

FIXTURES = Path(__file__).resolve().parent / "fixtures"
_PATH_RE = re.compile(r"fixture-path:\s*(\S+)")


def fixture_context(name: str) -> FileContext:
    text = (FIXTURES / name).read_text(encoding="utf-8")
    m = _PATH_RE.search(text)
    assert m, f"fixture {name} is missing a fixture-path comment"
    return FileContext(relpath=m.group(1), lexed=lex(text), text=text)


def make_context(relpath: str, text: str) -> FileContext:
    return FileContext(relpath=relpath, lexed=lex(text), text=text)


def run_token_rules(contexts: List[FileContext]) -> List[Finding]:
    """Token layer + suppression handling, no graph rules."""
    findings: List[Finding] = []
    for ctx in contexts:
        for fn, _doc in RULES.values():
            fn(ctx, findings)
    engine.apply_suppressions(contexts, findings)
    return findings


def as_triples(findings: List[Finding]) -> List[List]:
    return sorted([f.rule, f.path, f.line] for f in findings)


def golden(name: str) -> List[List]:
    data = json.loads((FIXTURES / name).read_text(encoding="utf-8"))
    return sorted([e["rule"], e["path"], e["line"]] for e in data)
