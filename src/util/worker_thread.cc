#include "util/worker_thread.h"

#include <utility>

namespace mmlib::util {

WorkerThread::~WorkerThread() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void WorkerThread::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!started_) {
      thread_ = std::thread([this] { RunLoop(); });
      started_ = true;
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void WorkerThread::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

uint64_t WorkerThread::completed() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return completed_;
}

void WorkerThread::RunLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ with an empty queue: finish. Queued tasks always run
        // before shutdown so a destructor never abandons submitted work.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      busy_ = false;
      ++completed_;
    }
    idle_.notify_all();
  }
}

}  // namespace mmlib::util
