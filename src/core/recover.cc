#include "core/recover.h"

#include "compress/chunked.h"
#include "core/fetch.h"
#include "core/model_code.h"
#include "core/train_service.h"
#include "data/archive.h"
#include "util/clock.h"

namespace mmlib::core {

namespace {

constexpr int kMaxChainDepth = 4096;

/// Parameter payloads written by current save services are chunked frames;
/// payloads from before the chunked container are raw serializations.
/// Auto-detect and decode accordingly.
Result<Bytes> DecodeParamsPayload(Bytes raw, util::ThreadPool* pool) {
  if (IsChunkedFrame(raw)) {
    return ChunkedUnframe(raw, pool);
  }
  return raw;
}

/// Times a region including any simulated network transfer time.
class PhaseTimer {
 public:
  explicit PhaseTimer(simnet::Network* network) : network_(network) {
    start_network_ = network_ != nullptr ? network_->TotalTransferSeconds()
                                         : 0.0;
  }

  double Stop() const {
    double seconds = stopwatch_.ElapsedSeconds();
    if (network_ != nullptr) {
      seconds += network_->TotalTransferSeconds() - start_network_;
    }
    return seconds;
  }

 private:
  Stopwatch stopwatch_;
  simnet::Network* network_;
  double start_network_ = 0.0;
};

}  // namespace

Result<Bytes> ModelRecoverer::FetchParamsPayload(const std::string& file_id) {
  // The per-chunk CRC-32 of the chunked frame catches payloads damaged in
  // flight; the stored copy is intact, so the cure is a re-fetch, not an
  // abort. Legacy raw payloads carry no checksums and decode as-is.
  return FetchDecoded(
      backends_.files, file_id,
      [this](Bytes raw) {
        return DecodeParamsPayload(std::move(raw), backends_.pool);
      },
      &corruption_refetches_);
}

Result<size_t> ModelRecoverer::BaseChainLength(const std::string& id) {
  size_t length = 0;
  std::string current = id;
  while (true) {
    MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                           backends_.docs->Get(kModelsCollection, current));
    const json::Value* base = doc.FindMember("base_model");
    if (base == nullptr || !base->is_string()) {
      return length;
    }
    current = base->as_string();
    if (++length > kMaxChainDepth) {
      return Status::Corruption("base model chain too long (cycle?)");
    }
  }
}

void ModelRecoverer::EnableSnapshotCache(size_t capacity_bytes) {
  cache_enabled_ = true;
  cache_capacity_bytes_ = capacity_bytes;
}

const Bytes* ModelRecoverer::CacheLookup(const std::string& id) {
  if (!cache_enabled_) {
    return nullptr;
  }
  auto it = cache_.find(id);
  if (it == cache_.end()) {
    ++cache_misses_;
    return nullptr;
  }
  ++cache_hits_;
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second.second);
  return &it->second.first;
}

void ModelRecoverer::CacheInsert(const std::string& id, Bytes snapshot) {
  if (!cache_enabled_ || snapshot.size() > cache_capacity_bytes_ ||
      cache_.count(id) > 0) {
    return;
  }
  cache_size_bytes_ += snapshot.size();
  cache_lru_.push_front(id);
  cache_.emplace(id, std::make_pair(std::move(snapshot), cache_lru_.begin()));
  while (cache_size_bytes_ > cache_capacity_bytes_ && !cache_lru_.empty()) {
    const std::string& victim = cache_lru_.back();
    auto it = cache_.find(victim);
    cache_size_bytes_ -= it->second.first.size();
    cache_.erase(it);
    cache_lru_.pop_back();
  }
}

Result<nn::Model> ModelRecoverer::RecoverInternal(const std::string& id,
                                                  RecoverBreakdown* breakdown,
                                                  int depth) {
  if (depth > kMaxChainDepth) {
    return Status::Corruption("base model chain too long (cycle?)");
  }

  PhaseTimer doc_timer(backends_.network);
  MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                         backends_.docs->Get(kModelsCollection, id));
  MMLIB_ASSIGN_OR_RETURN(std::string approach, doc.GetString("approach"));
  breakdown->load_seconds += doc_timer.Stop();

  // Snapshot cache: reuse a previously recovered state of this model.
  if (const Bytes* snapshot = CacheLookup(id); snapshot != nullptr) {
    PhaseTimer recover_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(std::string code_id, doc.GetString("code_doc"));
    MMLIB_ASSIGN_OR_RETURN(json::Value code_doc,
                           backends_.docs->Get(kCodeCollection, code_id));
    MMLIB_ASSIGN_OR_RETURN(const json::Value* descriptor,
                           code_doc.GetMember("descriptor"));
    MMLIB_ASSIGN_OR_RETURN(nn::Model model, BuildModelFromCode(*descriptor));
    MMLIB_RETURN_IF_ERROR(model.LoadParams(*snapshot));
    breakdown->recover_seconds += recover_timer.Stop();
    return model;
  }

  // Full snapshot (baseline saves, and the initial model of PUA/MPA chains).
  if (doc.FindMember("params_file") != nullptr) {
    PhaseTimer load_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(std::string params_file,
                           doc.GetString("params_file"));
    MMLIB_ASSIGN_OR_RETURN(std::string code_id, doc.GetString("code_doc"));
    MMLIB_ASSIGN_OR_RETURN(json::Value code_doc,
                           backends_.docs->Get(kCodeCollection, code_id));
    MMLIB_ASSIGN_OR_RETURN(Bytes params, FetchParamsPayload(params_file));
    breakdown->load_seconds += load_timer.Stop();

    PhaseTimer recover_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(const json::Value* descriptor,
                           code_doc.GetMember("descriptor"));
    MMLIB_ASSIGN_OR_RETURN(nn::Model model, BuildModelFromCode(*descriptor));
    MMLIB_RETURN_IF_ERROR(model.LoadParams(params));
    breakdown->recover_seconds += recover_timer.Stop();
    if (cache_enabled_) {
      CacheInsert(id, std::move(params));
    }
    return model;
  }

  // Derived model: recover the base first (recursive).
  const json::Value* base = doc.FindMember("base_model");
  if (base == nullptr || !base->is_string()) {
    return Status::Corruption("model " + id +
                              " has neither parameters nor a base model");
  }
  MMLIB_ASSIGN_OR_RETURN(
      nn::Model model, RecoverInternal(base->as_string(), breakdown,
                                       depth + 1));

  if (approach == kApproachParamUpdate) {
    PhaseTimer load_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(std::string update_file,
                           doc.GetString("update_file"));
    MMLIB_ASSIGN_OR_RETURN(Bytes update, FetchParamsPayload(update_file));
    breakdown->load_seconds += load_timer.Stop();

    PhaseTimer recover_timer(backends_.network);
    MMLIB_RETURN_IF_ERROR(model.MergeLayerSubset(update));
    breakdown->recover_seconds += recover_timer.Stop();
    if (cache_enabled_) {
      CacheInsert(id, model.SerializeParams());
    }
    return model;
  }

  if (approach == kApproachProvenance) {
    PhaseTimer load_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(std::string prov_id,
                           doc.GetString("provenance_doc"));
    MMLIB_ASSIGN_OR_RETURN(
        json::Value prov_doc,
        backends_.docs->Get(kProvenanceCollection, prov_id));

    Bytes optimizer_state;
    if (const json::Value* state_ref =
            prov_doc.FindMember("optimizer_state_file");
        state_ref != nullptr) {
      MMLIB_ASSIGN_OR_RETURN(optimizer_state,
                             backends_.files->LoadFile(state_ref->as_string()));
    }

    std::unique_ptr<data::Dataset> dataset;
    if (const json::Value* dataset_ref = prov_doc.FindMember("dataset_file");
        dataset_ref != nullptr) {
      // The archive's content-hash check detects in-flight damage; re-fetch
      // instead of aborting, like parameter payloads.
      MMLIB_ASSIGN_OR_RETURN(
          dataset,
          FetchDecoded(
              backends_.files, dataset_ref->as_string(),
              [](Bytes archive) {
                return data::DatasetArchiver::Extract(archive);
              },
              &corruption_refetches_));
    } else {
      if (dataset_resolver_ == nullptr) {
        return Status::FailedPrecondition(
            "model was saved with an external dataset manager but no "
            "DatasetResolver is configured");
      }
      MMLIB_ASSIGN_OR_RETURN(std::string name,
                             prov_doc.GetString("dataset_name"));
      MMLIB_ASSIGN_OR_RETURN(std::string hash,
                             prov_doc.GetString("dataset_ref"));
      MMLIB_ASSIGN_OR_RETURN(dataset, dataset_resolver_->Resolve(name, hash));
      if (dataset->ContentHash().ToHex() != hash) {
        return Status::Corruption("resolved dataset hash mismatch for " +
                                  name);
      }
    }
    breakdown->load_seconds += load_timer.Stop();

    // Reproduce the training step-by-step (deterministic execution).
    PhaseTimer recover_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(const json::Value* service_doc,
                           prov_doc.GetMember("train_service"));
    MMLIB_ASSIGN_OR_RETURN(
        std::unique_ptr<TrainService> service,
        RestoreTrainService(*service_doc, std::move(optimizer_state),
                            std::move(dataset)));
    MMLIB_RETURN_IF_ERROR(service
                              ->Train(&model, /*deterministic=*/true,
                                      /*scheduler_seed=*/0)
                              .status());
    breakdown->recover_seconds += recover_timer.Stop();
    if (cache_enabled_) {
      CacheInsert(id, model.SerializeParams());
    }
    return model;
  }

  return Status::Corruption("model " + id + ": unknown approach " + approach);
}

Result<RecoveredModel> ModelRecoverer::Recover(const std::string& id,
                                               const RecoverOptions& options) {
  const double start_seconds =
      backends_.network != nullptr ? backends_.network->TotalTransferSeconds()
                                   : 0.0;
  Result<RecoveredModel> outcome = DoRecover(id, options);
  if (serve_hook_) {
    ServeOpReport report;
    report.op = "model.recover";
    report.outcome = outcome.ok() ? StatusCode::kOk : outcome.status().code();
    if (backends_.network != nullptr) {
      report.virtual_seconds =
          backends_.network->TotalTransferSeconds() - start_seconds;
    }
    if (outcome.ok()) {
      report.bytes = outcome.value().model.ParamByteSize();
    }
    serve_hook_(report);
  }
  return outcome;
}

Result<RecoveredModel> ModelRecoverer::DoRecover(const std::string& id,
                                                 const RecoverOptions& options) {
  RecoveredModel result;
  result.model_id = id;

  MMLIB_ASSIGN_OR_RETURN(nn::Model model,
                         RecoverInternal(id, &result.breakdown, 0));
  result.model = std::move(model);

  // Load the top-level document again for verification metadata (cheap: the
  // metadata documents are tiny compared to parameter payloads).
  MMLIB_ASSIGN_OR_RETURN(json::Value doc,
                         backends_.docs->Get(kModelsCollection, id));

  if (options.check_environment) {
    PhaseTimer env_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(std::string env_id, doc.GetString("env_doc"));
    MMLIB_ASSIGN_OR_RETURN(json::Value env_doc,
                           backends_.docs->Get(kEnvironmentsCollection,
                                               env_id));
    MMLIB_ASSIGN_OR_RETURN(env::EnvironmentInfo saved,
                           env::EnvironmentInfo::FromJson(env_doc));
    const env::EnvironmentInfo current = env::CollectEnvironment();
    result.environment_diffs = saved.DiffAgainst(current);
    result.environment_matches = result.environment_diffs.empty();
    result.breakdown.check_env_seconds += env_timer.Stop();
  }

  if (options.verify_checksum) {
    PhaseTimer verify_timer(backends_.network);
    MMLIB_ASSIGN_OR_RETURN(const json::Value* checksum,
                           doc.GetMember("checksum"));
    MMLIB_ASSIGN_OR_RETURN(std::string expected,
                           checksum->GetString("params_hash"));
    const std::string actual = result.model.ParamsHash().ToHex();
    result.breakdown.verify_seconds += verify_timer.Stop();
    if (actual != expected) {
      return Status::Corruption("model " + id +
                                ": recovered parameter hash mismatch");
    }
    result.checksum_verified = true;
  }

  return result;
}

}  // namespace mmlib::core
