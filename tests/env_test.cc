#include <gtest/gtest.h>

#include "env/environment.h"

namespace mmlib::env {
namespace {

TEST(EnvironmentTest, CollectFillsCoreFields) {
  const EnvironmentInfo info = CollectEnvironment();
  EXPECT_EQ(info.framework_version, kMmlibVersion);
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_FALSE(info.os_name.empty());
  EXPECT_FALSE(info.os_release.empty());
  EXPECT_FALSE(info.machine.empty());
  EXPECT_FALSE(info.libraries.empty());
}

TEST(EnvironmentTest, CollectIsStableWithinProcess) {
  EXPECT_TRUE(CollectEnvironment() == CollectEnvironment());
}

TEST(EnvironmentTest, JsonRoundtrip) {
  const EnvironmentInfo info = CollectEnvironment();
  auto restored = EnvironmentInfo::FromJson(info.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored.value() == info);
}

TEST(EnvironmentTest, FromJsonRejectsMissingFields) {
  json::Value doc = json::Value::MakeObject();
  doc.Set("compiler", "gcc");
  EXPECT_FALSE(EnvironmentInfo::FromJson(doc).ok());
}

TEST(EnvironmentTest, DiffDetectsEveryFieldChange) {
  const EnvironmentInfo base = CollectEnvironment();
  EXPECT_TRUE(base.DiffAgainst(base).empty());

  EnvironmentInfo other = base;
  other.framework_version = "mmlib++ 0.9";
  other.os_release = "9.9.9-different";
  other.cpu_cores += 2;
  other.libraries["mmlib.nn"] = "2.0";
  const auto diffs = base.DiffAgainst(other);
  EXPECT_EQ(diffs.size(), 4u);
}

TEST(EnvironmentTest, DiffMessagesNameTheField) {
  EnvironmentInfo a = CollectEnvironment();
  EnvironmentInfo b = a;
  b.compiler = "icc 99";
  const auto diffs = a.DiffAgainst(b);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_NE(diffs[0].find("compiler"), std::string::npos);
  EXPECT_NE(diffs[0].find("icc 99"), std::string::npos);
}

}  // namespace
}  // namespace mmlib::env
