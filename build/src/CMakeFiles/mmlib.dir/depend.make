# Empty dependencies file for mmlib.
# This may be replaced when dependencies are built.
