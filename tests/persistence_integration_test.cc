#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "core/catalog.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/provenance.h"
#include "core/recover.h"
#include "core/train_service.h"
#include "docstore/document_store.h"
#include "filestore/file_store.h"
#include "models/zoo.h"

namespace mmlib::core {
namespace {

/// Integration tests over disk-backed stores: everything written by a save
/// "session" must be recoverable by a later session that only shares the
/// store directory — the paper's central-server scenario, where the machine
/// that saves and the machine that recovers share only MongoDB + storage.
class PersistenceIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "/mmlib-persist-" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(root_);
    config_ = models::DefaultConfig(models::Architecture::kMobileNetV2);
    config_.channel_divisor = 8;
    config_.image_size = 28;
    config_.num_classes = 10;
    environment_ = env::CollectEnvironment();
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  struct Session {
    std::unique_ptr<docstore::PersistentDocumentStore> docs;
    std::unique_ptr<filestore::LocalDirFileStore> files;
    StorageBackends backends;
  };

  /// Opens the store directory as a fresh "process".
  Session OpenSession() {
    Session session;
    session.docs =
        docstore::PersistentDocumentStore::Open(root_ + "/docs").value();
    session.files =
        filestore::LocalDirFileStore::Open(root_ + "/files").value();
    session.backends =
        StorageBackends{session.docs.get(), session.files.get(), nullptr};
    return session;
  }

  std::string root_;
  models::ModelConfig config_;
  env::EnvironmentInfo environment_;
};

TEST_F(PersistenceIntegrationTest, PuaChainSurvivesReopen) {
  Digest final_hash{};
  std::string head_id;
  {
    // Session 1: save an initial model and two partial updates.
    Session session = OpenSession();
    ParamUpdateSaveService service(session.backends);
    auto model = models::BuildModel(config_).value();
    models::ApplyPartialUpdateFreeze(&model);

    SaveRequest request;
    request.model = &model;
    request.code = CodeDescriptorFor(config_);
    request.environment = &environment_;
    head_id = service.SaveModel(request).value().model_id;

    Rng rng(1);
    for (int round = 0; round < 2; ++round) {
      for (size_t i = 0; i < model.node_count(); ++i) {
        for (nn::Param& param : model.layer(i)->params()) {
          if (param.trainable && !param.is_buffer) {
            for (int64_t k = 0; k < param.value.numel(); ++k) {
              param.value.at(k) += rng.NextGaussian() * 0.01f;
            }
          }
        }
      }
      SaveRequest derived = request;
      derived.base_model_id = head_id;
      head_id = service.SaveModel(derived).value().model_id;
    }
    final_hash = model.ParamsHash();
  }
  {
    // Session 2: a different "process" recovers from disk alone.
    Session session = OpenSession();
    ModelRecoverer recoverer(session.backends);
    auto recovered = recoverer.Recover(head_id, RecoverOptions{}).value();
    EXPECT_EQ(recovered.model.ParamsHash(), final_hash);
    EXPECT_TRUE(recovered.checksum_verified);
    EXPECT_TRUE(recovered.environment_matches);
    EXPECT_EQ(recoverer.BaseChainLength(head_id).value(), 2u);

    ModelCatalog catalog(session.backends);
    EXPECT_EQ(catalog.ListModels().value().size(), 3u);
    EXPECT_EQ(catalog.GetChain(head_id).value().size(), 3u);
  }
}

TEST_F(PersistenceIntegrationTest, ProvenanceRecoverySurvivesReopen) {
  Digest trained_hash{};
  std::string derived_id;
  {
    // Session 1: train and save via provenance (dataset archived to disk).
    Session session = OpenSession();
    ProvenanceSaveService service(session.backends);
    auto model = models::BuildModel(config_).value();

    SaveRequest request;
    request.model = &model;
    request.code = CodeDescriptorFor(config_);
    request.environment = &environment_;
    const std::string initial_id =
        service.SaveModel(request).value().model_id;

    data::SyntheticImageDataset dataset(
        data::PaperDatasetId::kCocoOutdoor512, 4096);
    TrainConfig train_config;
    train_config.epochs = 1;
    train_config.max_batches_per_epoch = 2;
    train_config.loader.batch_size = 4;
    train_config.loader.image_size = config_.image_size;
    train_config.loader.num_classes = config_.num_classes;
    train_config.sgd.momentum = 0.9f;
    ImageTrainService trainer(&dataset, train_config);
    auto provenance = trainer.CaptureProvenance().value();
    ASSERT_TRUE(trainer.Train(&model, true, 0).ok());
    trained_hash = model.ParamsHash();

    SaveRequest derived = request;
    derived.base_model_id = initial_id;
    derived.provenance = &provenance;
    derived_id = service.SaveModel(derived).value().model_id;
  }
  {
    // Session 2: recovery replays the training from the on-disk archive.
    Session session = OpenSession();
    ModelRecoverer recoverer(session.backends);
    auto recovered =
        recoverer.Recover(derived_id, RecoverOptions{}).value();
    EXPECT_EQ(recovered.model.ParamsHash(), trained_hash);
    EXPECT_TRUE(recovered.checksum_verified);
  }
}

TEST_F(PersistenceIntegrationTest, DeletionInOneSessionIsSeenByTheNext) {
  std::string head_id;
  {
    Session session = OpenSession();
    ParamUpdateSaveService service(session.backends);
    auto model = models::BuildModel(config_).value();
    SaveRequest request;
    request.model = &model;
    request.code = CodeDescriptorFor(config_);
    request.environment = &environment_;
    head_id = service.SaveModel(request).value().model_id;
  }
  {
    Session session = OpenSession();
    ModelCatalog catalog(session.backends);
    ASSERT_TRUE(catalog.DeleteModel(head_id).ok());
  }
  {
    Session session = OpenSession();
    ModelCatalog catalog(session.backends);
    EXPECT_TRUE(catalog.ListModels().value().empty());
    EXPECT_EQ(session.files->FileCount(), 0u);
    ModelRecoverer recoverer(session.backends);
    EXPECT_FALSE(recoverer.Recover(head_id, RecoverOptions{}).ok());
  }
}

}  // namespace
}  // namespace mmlib::core
