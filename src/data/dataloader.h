#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/preprocess.h"
#include "tensor/tensor.h"
#include "util/random.h"
#include "util/result.h"

namespace mmlib::data {

/// One training batch.
struct Batch {
  Tensor images;                // [N, 3, H, W], float in [-0.5, 0.5]
  std::vector<int64_t> labels;  // size N, in [0, num_classes)
};

/// Configuration of a DataLoader. The loader is a *stateless* parametrized
/// object in the paper's provenance terminology (Section 3.3): recreating it
/// with the same options over the same dataset reproduces the exact same
/// batch sequence.
struct DataLoaderOptions {
  int64_t batch_size = 16;
  int64_t image_size = 56;    // images are resized to image_size^2
  int64_t num_classes = 250;  // labels are mapped into [0, num_classes)
  bool shuffle = true;
  bool augment = false;       // random horizontal flip
  uint64_t seed = 1;          // shuffle/augmentation seed
  /// Crop/normalization pipeline (tracked provenance, see data/preprocess.h).
  PreprocessorConfig preprocess;
};

/// Deterministic batched loader with nearest-neighbor resize, label
/// remapping, normalization, optional seeded shuffle and flip augmentation.
class DataLoader {
 public:
  DataLoader(const Dataset* dataset, DataLoaderOptions options);

  const DataLoaderOptions& options() const { return options_; }
  const Dataset* dataset() const { return dataset_; }

  /// Number of batches per epoch (last partial batch included).
  size_t BatchesPerEpoch() const;

  /// Starts epoch `epoch`; reshuffles deterministically from (seed, epoch).
  void StartEpoch(uint64_t epoch);

  /// Loads batch `batch_index` of the current epoch.
  Result<Batch> GetBatch(size_t batch_index) const;

  /// Fills `out` with batch `batch_index` of the current epoch, reusing its
  /// existing tensor/label storage when the shapes match — the allocation-
  /// free path the prefetcher cycles recycled batches through. Contents are
  /// identical to GetBatch(batch_index).
  Status FillBatch(size_t batch_index, Batch* out) const;

 private:
  const Dataset* dataset_;
  DataLoaderOptions options_;
  Preprocessor preprocessor_;
  std::vector<size_t> order_;
  uint64_t epoch_ = 0;
};

}  // namespace mmlib::data

