// fixture-path: src/util/result.h
#pragma once
template <typename T>
class Result {};
