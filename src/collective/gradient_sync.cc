#include "collective/gradient_sync.h"

namespace mmlib::collective {

Status GradientSynchronizer::Sync(nn::Model* model, int64_t step) {
  if (session_ == nullptr) {
    return Status::FailedPrecondition("gradient sync without a ring session");
  }
  model->FlattenTrainableGrads(&flat_);
  // Every worker holds the same replica gradient; the reduction reads each
  // cohort member's input through its own pointer, so sharded per-worker
  // buffers would drop in here without touching the session.
  const std::vector<const std::vector<float>*> inputs(
      session_->worker_count(), &flat_);
  MMLIB_RETURN_IF_ERROR(session_->AllReduce(step, inputs, &flat_));
  return model->LoadTrainableGrads(flat_);
}

}  // namespace mmlib::collective
