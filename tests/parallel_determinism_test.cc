#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "audit/determinism_auditor.h"
#include "compress/chunked.h"
#include "core/train_service.h"
#include "models/zoo.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "util/thread_pool.h"

namespace mmlib {
namespace {

/// The deterministic-chunking contract, end to end: every parallelized
/// component of the library must produce bit-identical results whether its
/// pool runs 1 thread or 8 (DESIGN.md "Threading model"). This is what
/// keeps deterministic training reproducible across machines with
/// different core counts (paper Sections 2.3/4.5, Figure 13).

constexpr size_t kPoolSizes[] = {1, 2, 8};

bool BitIdentical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

struct LayerRunResult {
  Tensor output;
  Tensor grad_input;
  std::vector<Tensor> param_grads;
};

/// Runs one deterministic forward+backward of a freshly built layer on a
/// pool of `threads` threads.
template <typename MakeLayer>
LayerRunResult RunLayer(const MakeLayer& make_layer, const Tensor& input,
                        size_t threads) {
  util::ThreadPool pool(threads);
  std::unique_ptr<nn::Layer> layer = make_layer();
  nn::ExecutionContext ctx = nn::ExecutionContext::Deterministic(7);
  ctx.set_pool(&pool);

  LayerRunResult result;
  result.output = layer->Forward({&input}, &ctx).value();
  Tensor grad_out(result.output.shape());
  grad_out.Fill(1.0f);
  layer->ZeroGrad();
  std::vector<Tensor> grads = layer->Backward(grad_out, &ctx).value();
  result.grad_input = std::move(grads[0]);
  for (const nn::Param& p : layer->params()) {
    result.param_grads.push_back(p.grad);
  }
  return result;
}

template <typename MakeLayer>
void ExpectLayerInvariantAcrossPools(const MakeLayer& make_layer,
                                     const Tensor& input) {
  const LayerRunResult reference = RunLayer(make_layer, input, 1);
  for (size_t threads : kPoolSizes) {
    const LayerRunResult run = RunLayer(make_layer, input, threads);
    EXPECT_TRUE(BitIdentical(run.output, reference.output))
        << "forward output diverged at " << threads << " threads";
    EXPECT_TRUE(BitIdentical(run.grad_input, reference.grad_input))
        << "input gradient diverged at " << threads << " threads";
    ASSERT_EQ(run.param_grads.size(), reference.param_grads.size());
    for (size_t i = 0; i < run.param_grads.size(); ++i) {
      EXPECT_TRUE(
          BitIdentical(run.param_grads[i], reference.param_grads[i]))
          << "param grad " << i << " diverged at " << threads << " threads";
    }
  }
}

Tensor RandomInput(Shape shape, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Gaussian(std::move(shape), 1.0f, &rng);
}

TEST(ParallelDeterminismTest, Conv2dSpatialBitIdenticalAcrossPools) {
  // 3x3 convolution: deterministic mode uses compensated summation, whose
  // per-chunk compensation state is the hardest case for chunked backward.
  auto make = [] {
    Rng rng(11);
    return std::make_unique<nn::Conv2d>("c3", 4, 6, 3, 1, 1, 1, &rng);
  };
  ExpectLayerInvariantAcrossPools(make, RandomInput({5, 4, 9, 9}, 21));
}

TEST(ParallelDeterminismTest, Conv2dPointwiseBitIdenticalAcrossPools) {
  auto make = [] {
    Rng rng(12);
    return std::make_unique<nn::Conv2d>("c1", 8, 8, 1, 1, 0, 1, &rng);
  };
  ExpectLayerInvariantAcrossPools(make, RandomInput({6, 8, 5, 5}, 22));
}

TEST(ParallelDeterminismTest, Conv2dDepthwiseBitIdenticalAcrossPools) {
  auto make = [] {
    Rng rng(13);
    return std::make_unique<nn::Conv2d>("dw", 8, 8, 3, 2, 1, 8, &rng);
  };
  ExpectLayerInvariantAcrossPools(make, RandomInput({3, 8, 11, 11}, 23));
}

TEST(ParallelDeterminismTest, LinearBitIdenticalAcrossPools) {
  auto make = [] {
    Rng rng(14);
    return std::make_unique<nn::Linear>("fc", 37, 19, &rng);
  };
  ExpectLayerInvariantAcrossPools(make, RandomInput({9, 37}, 24));
}

TEST(ParallelDeterminismTest, MerkleRootIdenticalAcrossPools) {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 10;
  config.init_seed = 5;
  nn::Model model = models::BuildModel(config).value();

  util::ThreadPool serial(1);
  const Digest reference = model.BuildMerkleTree(&serial).value().root();
  for (size_t threads : kPoolSizes) {
    util::ThreadPool pool(threads);
    EXPECT_EQ(model.BuildMerkleTree(&pool).value().root(), reference)
        << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, ChunkedFrameBytesIdenticalAcrossPools) {
  // Compressible pseudo-random payload spanning many chunks.
  Bytes payload(200 * 1024);
  Rng rng(99);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(rng.NextBelow(17));
  }
  constexpr size_t kChunkSize = 16 * 1024;

  util::ThreadPool serial(1);
  const Bytes reference =
      ChunkedFrame(payload, CodecKind::kLz77, kChunkSize, &serial).value();
  ASSERT_TRUE(IsChunkedFrame(reference));
  for (size_t threads : kPoolSizes) {
    util::ThreadPool pool(threads);
    const Bytes frame =
        ChunkedFrame(payload, CodecKind::kLz77, kChunkSize, &pool).value();
    EXPECT_EQ(frame, reference) << threads << " threads";
    EXPECT_EQ(ChunkedUnframe(frame, &pool).value(), payload)
        << threads << " threads";
  }
}

TEST(ParallelDeterminismTest, ChunkedUnframeDetectsTamper) {
  Bytes payload(64 * 1024, 0xab);
  const Bytes frame =
      ChunkedFrame(payload, CodecKind::kIdentity, 16 * 1024).value();
  Bytes tampered = frame;
  tampered[tampered.size() - 5] ^= 0x40;  // inside the last chunk's payload
  EXPECT_EQ(ChunkedUnframe(tampered).status().code(),
            StatusCode::kCorruption);
}

TEST(ParallelDeterminismTest, AuditedTrainingIdenticalAcrossPools) {
  // The Fig. 13 replay guarantee under parallelism: a deterministic
  // training run audited at layer granularity must replay bit-for-bit on
  // pools of any size.
  core::TrainConfig config;
  config.epochs = 1;
  config.max_batches_per_epoch = 2;
  config.seed = 77;
  config.loader.batch_size = 4;
  config.loader.image_size = 28;
  config.loader.num_classes = 10;
  config.loader.seed = 77;
  data::SyntheticImageDataset dataset(data::PaperDatasetId::kCocoOutdoor512,
                                      4096);

  models::ModelConfig model_config =
      models::DefaultConfig(models::Architecture::kMobileNetV2);
  model_config.channel_divisor = 8;
  model_config.image_size = 28;
  model_config.num_classes = 10;
  model_config.init_seed = 1;

  audit::DeterminismAuditor auditor;
  Digest params_hash;
  for (size_t threads : kPoolSizes) {
    util::ThreadPool pool(threads);
    nn::Model model = models::BuildModel(model_config).value();
    core::ImageTrainService service(&dataset, config);
    service.set_thread_pool(&pool);
    service.set_determinism_auditor(&auditor);
    // Runs after the first replay the reference trace; any layer whose
    // forward output or input gradient changed with the pool size fails
    // here with Corruption.
    auto times = service.Train(&model, /*deterministic=*/true, 0);
    ASSERT_TRUE(times.ok()) << threads << " threads: " << times.status();
    if (threads == kPoolSizes[0]) {
      params_hash = model.ParamsHash();
    } else {
      EXPECT_EQ(model.ParamsHash(), params_hash) << threads << " threads";
    }
  }
  EXPECT_FALSE(auditor.first_divergence().has_value())
      << auditor.first_divergence()->ToString();
  EXPECT_EQ(auditor.completed_runs(), 3u);
}

}  // namespace
}  // namespace mmlib
