#pragma once

#include <cstdint>

#include "data/dataloader.h"
#include "nn/model.h"
#include "util/result.h"

namespace mmlib::core {

/// Aggregate metrics of an evaluation pass.
struct EvaluationResult {
  double mean_loss = 0.0;
  double accuracy = 0.0;
  size_t sample_count = 0;
};

/// Runs inference over the loader's current epoch (eval mode: batch-norm
/// uses running statistics, dropout is identity) and reports mean
/// cross-entropy loss and top-1 accuracy. `max_batches` < 0 evaluates the
/// whole epoch. Deterministic in deterministic contexts — evaluating a
/// recovered model yields bit-identical logits to the original.
Result<EvaluationResult> EvaluateModel(nn::Model* model,
                                       const data::DataLoader& loader,
                                       nn::ExecutionContext* ctx,
                                       int64_t max_batches = -1);

}  // namespace mmlib::core

