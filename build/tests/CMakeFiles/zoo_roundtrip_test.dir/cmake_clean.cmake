file(REMOVE_RECURSE
  "CMakeFiles/zoo_roundtrip_test.dir/zoo_roundtrip_test.cc.o"
  "CMakeFiles/zoo_roundtrip_test.dir/zoo_roundtrip_test.cc.o.d"
  "zoo_roundtrip_test"
  "zoo_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoo_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
