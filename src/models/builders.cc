#include "models/builders.h"

namespace mmlib::models::internal {

int64_t ConvBn(BuilderCtx* ctx, const std::string& name, int64_t input_node,
               int64_t in_ch, int64_t out_ch, int64_t kernel, int64_t stride,
               int64_t padding, int64_t groups) {
  int64_t node = ctx->model->AddNode(
      std::make_unique<nn::Conv2d>(name + ".conv", in_ch, out_ch, kernel,
                                   stride, padding, groups, ctx->rng),
      {input_node});
  node = ctx->model->AddNode(
      std::make_unique<nn::BatchNorm2d>(name + ".bn", out_ch), {node});
  return node;
}

int64_t ConvBnRelu(BuilderCtx* ctx, const std::string& name,
                   int64_t input_node, int64_t in_ch, int64_t out_ch,
                   int64_t kernel, int64_t stride, int64_t padding,
                   int64_t groups, float relu_clip) {
  int64_t node = ConvBn(ctx, name, input_node, in_ch, out_ch, kernel, stride,
                        padding, groups);
  node = ctx->model->AddNode(
      std::make_unique<nn::ReLU>(name + ".relu", relu_clip), {node});
  return node;
}

}  // namespace mmlib::models::internal
