#pragma once

#include <sstream>
#include <string>

/// mmlib invariant-checking macros (DESIGN.md "Correctness tooling").
///
/// MMLIB_CHECK(cond)        -- fatal in every build type. Checks internal
///                             invariants whose violation means memory is
///                             already suspect; recoverable conditions travel
///                             through Status/Result instead.
/// MMLIB_DCHECK(cond)       -- compiled out under NDEBUG (unless
///                             MMLIB_FORCE_DCHECK is defined); for checks on
///                             hot paths, e.g. per-element bounds.
/// MMLIB_CHECK_EQ/NE/LT/LE/GT/GE and the MMLIB_DCHECK_* twins print both
/// operand values on failure; operands must be streamable and are evaluated
/// a second time on the failing path only.
///
/// All failure paths print `<kind> failed: file:line: condition message` to
/// stderr and abort(), so violations surface in ctest and in sanitizer runs
/// with a stack trace. Extra context streams into the macro:
///
///   MMLIB_CHECK(shape == other.shape) << "while merging " << name;

namespace mmlib {

/// True when MMLIB_DCHECK* are live in this build. Tests use this to decide
/// whether to expect death.
#if defined(NDEBUG) && !defined(MMLIB_FORCE_DCHECK)
inline constexpr bool kDCheckEnabled = false;
#else
inline constexpr bool kDCheckEnabled = true;
#endif

namespace check_internal {

/// Prints the failure report to stderr and aborts. Out-of-line so the macro
/// expansion stays small.
[[noreturn]] void CheckFail(const char* kind, const char* file, int line,
                            const char* condition, const std::string& message);

/// Temporary that collects streamed context and aborts in its destructor.
/// Constructed only on the failing path.
class FailureStream {
 public:
  FailureStream(const char* kind, const char* file, int line,
                const char* condition)
      : kind_(kind), file_(file), line_(line), condition_(condition) {}

  FailureStream(const FailureStream&) = delete;
  FailureStream& operator=(const FailureStream&) = delete;

  [[noreturn]] ~FailureStream() {
    CheckFail(kind_, file_, line_, condition_, stream_.str());
  }

  template <typename T>
  FailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* kind_;
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

}  // namespace check_internal
}  // namespace mmlib

// The `while` form makes the macro a single statement that accepts streamed
// context; the FailureStream destructor is [[noreturn]], so the loop body
// runs at most once.
#define MMLIB_CHECK(condition)                                               \
  while (__builtin_expect(!(condition), 0))                                  \
  ::mmlib::check_internal::FailureStream("MMLIB_CHECK", __FILE__, __LINE__,  \
                                         #condition)

#define MMLIB_CHECK_OP_(kind, op, a, b)                               \
  while (__builtin_expect(!((a)op(b)), 0))                            \
  ::mmlib::check_internal::FailureStream(kind, __FILE__, __LINE__,    \
                                         #a " " #op " " #b)           \
      << "(" << (a) << " vs " << (b) << ") "

#define MMLIB_CHECK_EQ(a, b) MMLIB_CHECK_OP_("MMLIB_CHECK_EQ", ==, a, b)
#define MMLIB_CHECK_NE(a, b) MMLIB_CHECK_OP_("MMLIB_CHECK_NE", !=, a, b)
#define MMLIB_CHECK_LT(a, b) MMLIB_CHECK_OP_("MMLIB_CHECK_LT", <, a, b)
#define MMLIB_CHECK_LE(a, b) MMLIB_CHECK_OP_("MMLIB_CHECK_LE", <=, a, b)
#define MMLIB_CHECK_GT(a, b) MMLIB_CHECK_OP_("MMLIB_CHECK_GT", >, a, b)
#define MMLIB_CHECK_GE(a, b) MMLIB_CHECK_OP_("MMLIB_CHECK_GE", >=, a, b)

#if defined(NDEBUG) && !defined(MMLIB_FORCE_DCHECK)
// Dead but compiled: operands stay odr-used (no unused-variable warnings)
// and keep type-checking, yet are never evaluated at run time.
#define MMLIB_DCHECK(condition)                                              \
  while (false && !(condition))                                              \
  ::mmlib::check_internal::FailureStream("MMLIB_DCHECK", __FILE__, __LINE__, \
                                         #condition)
#define MMLIB_DCHECK_OP_(kind, op, a, b)                              \
  while (false && !((a)op(b)))                                        \
  ::mmlib::check_internal::FailureStream(kind, __FILE__, __LINE__,    \
                                         #a " " #op " " #b)
#else
#define MMLIB_DCHECK(condition)                                              \
  while (__builtin_expect(!(condition), 0))                                  \
  ::mmlib::check_internal::FailureStream("MMLIB_DCHECK", __FILE__, __LINE__, \
                                         #condition)
#define MMLIB_DCHECK_OP_(kind, op, a, b)                              \
  while (__builtin_expect(!((a)op(b)), 0))                            \
  ::mmlib::check_internal::FailureStream(kind, __FILE__, __LINE__,    \
                                         #a " " #op " " #b)           \
      << "(" << (a) << " vs " << (b) << ") "
#endif

#define MMLIB_DCHECK_EQ(a, b) MMLIB_DCHECK_OP_("MMLIB_DCHECK_EQ", ==, a, b)
#define MMLIB_DCHECK_NE(a, b) MMLIB_DCHECK_OP_("MMLIB_DCHECK_NE", !=, a, b)
#define MMLIB_DCHECK_LT(a, b) MMLIB_DCHECK_OP_("MMLIB_DCHECK_LT", <, a, b)
#define MMLIB_DCHECK_LE(a, b) MMLIB_DCHECK_OP_("MMLIB_DCHECK_LE", <=, a, b)
#define MMLIB_DCHECK_GT(a, b) MMLIB_DCHECK_OP_("MMLIB_DCHECK_GT", >, a, b)
#define MMLIB_DCHECK_GE(a, b) MMLIB_DCHECK_OP_("MMLIB_DCHECK_GE", >=, a, b)
