#include "persist/journal.h"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "json/json.h"
#include "util/crash_point.h"
#include "util/fs.h"
#include "util/strings.h"

namespace mmlib::persist {

namespace {

constexpr const char* kRecordSuffix = ".json";

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

}  // namespace

SaveJournal::SaveJournal(std::string root) : root_(std::move(root)) {}

Result<std::unique_ptr<SaveJournal>> SaveJournal::Open(
    const std::string& root) {
  std::error_code ec;
  std::filesystem::create_directories(root, ec);
  if (ec) {
    return Status::IoError("cannot create " + root + ": " + ec.message());
  }
  std::unique_ptr<SaveJournal> journal(new SaveJournal(root));
  MMLIB_RETURN_IF_ERROR(journal->LoadExisting());
  return journal;
}

Status SaveJournal::LoadExisting() {
  std::error_code ec;
  std::vector<std::string> record_names;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    const std::string filename = entry.path().filename().string();
    if (EndsWith(filename, util::kTmpSuffix)) {
      // A record rewrite died before its rename; the previous durable
      // version of the record (if any) is authoritative.
      std::error_code remove_ec;
      std::filesystem::remove(entry.path(), remove_ec);
      continue;
    }
    if (EndsWith(filename, kRecordSuffix)) {
      record_names.push_back(
          filename.substr(0, filename.size() - std::strlen(kRecordSuffix)));
    }
  }
  for (const std::string& txn_id : record_names) {
    MMLIB_ASSIGN_OR_RETURN(std::string content,
                           ReadWholeFile(PathFor(txn_id)));
    auto parsed = json::Parse(content);
    if (!parsed.ok()) {
      return Status::Corruption("journal record " + txn_id +
                                " is not valid JSON: " +
                                parsed.status().message());
    }
    Record record;
    MMLIB_ASSIGN_OR_RETURN(record.committed, parsed->GetBool("committed"));
    MMLIB_ASSIGN_OR_RETURN(const json::Value* ops, parsed->GetMember("ops"));
    if (!ops->is_array()) {
      return Status::Corruption("journal record " + txn_id +
                                " has a non-array ops member");
    }
    for (const json::Value& op_doc : ops->as_array()) {
      JournalOp op;
      MMLIB_ASSIGN_OR_RETURN(op.store, op_doc.GetString("store"));
      MMLIB_ASSIGN_OR_RETURN(op.collection, op_doc.GetString("collection"));
      MMLIB_ASSIGN_OR_RETURN(op.id, op_doc.GetString("id"));
      record.ops.push_back(std::move(op));
    }
    records_[txn_id] = std::move(record);
  }
  return Status::OK();
}

std::string SaveJournal::PathFor(const std::string& txn_id) const {
  return root_ + "/" + txn_id + kRecordSuffix;
}

Status SaveJournal::WriteRecord(const std::string& txn_id,
                                const Record& record) {
  json::Value ops = json::Value::MakeArray();
  for (const JournalOp& op : record.ops) {
    json::Value op_doc = json::Value::MakeObject();
    op_doc.Set("store", op.store);
    op_doc.Set("collection", op.collection);
    op_doc.Set("id", op.id);
    ops.Append(std::move(op_doc));
  }
  json::Value doc = json::Value::MakeObject();
  doc.Set("committed", record.committed);
  doc.Set("ops", std::move(ops));
  const std::string text = doc.Dump();
  return util::AtomicWriteFile(PathFor(txn_id),
                         reinterpret_cast<const uint8_t*>(text.data()),
                         text.size());
}

Status SaveJournal::RemoveRecord(const std::string& txn_id) {
  records_.erase(txn_id);
  const Status status =
      util::RemoveFileStrict(PathFor(txn_id), "journal record " + txn_id);
  // Already gone is fine: an interrupted replay may have removed the file
  // before this process learned about it.
  if (status.code() == StatusCode::kNotFound) {
    return Status::OK();
  }
  return status;
}

Result<std::string> SaveJournal::Begin() {
  // Skip ids whose record still exists — either pending in memory or left
  // on disk by a crashed predecessor awaiting replay.
  std::string txn_id;
  do {
    txn_id = "txn-" + std::to_string(next_txn_++);
  } while (records_.count(txn_id) > 0 ||
           std::filesystem::exists(PathFor(txn_id)));
  Record record;
  MMLIB_RETURN_IF_ERROR(WriteRecord(txn_id, record));
  records_[txn_id] = std::move(record);
  MMLIB_CRASH_POINT("journal.begin");
  return txn_id;
}

Status SaveJournal::AppendOp(const std::string& txn_id, const JournalOp& op) {
  auto it = records_.find(txn_id);
  if (it == records_.end()) {
    return Status::FailedPrecondition("no open journal record " + txn_id);
  }
  it->second.ops.push_back(op);
  const Status status = WriteRecord(txn_id, it->second);
  if (!status.ok()) {
    it->second.ops.pop_back();
    return status;
  }
  MMLIB_CRASH_POINT("journal.append");
  return Status::OK();
}

Status SaveJournal::MarkCommitted(const std::string& txn_id) {
  auto it = records_.find(txn_id);
  if (it == records_.end()) {
    return Status::FailedPrecondition("no open journal record " + txn_id);
  }
  it->second.committed = true;
  const Status status = WriteRecord(txn_id, it->second);
  if (!status.ok()) {
    it->second.committed = false;
    return status;
  }
  MMLIB_CRASH_POINT("journal.commit");
  return Status::OK();
}

Status SaveJournal::Close(const std::string& txn_id) {
  return RemoveRecord(txn_id);
}

Status SaveJournal::Replay(const std::string& store_kind, const UndoFn& undo) {
  std::vector<std::string> txn_ids;
  txn_ids.reserve(records_.size());
  for (const auto& [txn_id, record] : records_) {
    txn_ids.push_back(txn_id);
  }
  for (const std::string& txn_id : txn_ids) {
    Record& record = records_[txn_id];
    if (record.committed) {
      // The save reached its durable commit mark before the crash; its
      // writes are the real data now, only the record itself is garbage.
      MMLIB_RETURN_IF_ERROR(RemoveRecord(txn_id));
      continue;
    }
    std::vector<JournalOp> remaining;
    remaining.reserve(record.ops.size());
    for (size_t i = 0; i < record.ops.size(); ++i) {
      const JournalOp& op = record.ops[i];
      if (op.store != store_kind) {
        remaining.push_back(op);
        continue;
      }
      MMLIB_CRASH_POINT("journal.replay.op");
      const Status status = undo(op);
      if (!status.ok() && status.code() != StatusCode::kNotFound) {
        // Put the unresolved tail back so a later replay retries it.
        remaining.insert(remaining.end(), record.ops.begin() + i,
                         record.ops.end());
        record.ops = std::move(remaining);
        return status;
      }
    }
    record.ops = std::move(remaining);
    if (record.ops.empty()) {
      MMLIB_RETURN_IF_ERROR(RemoveRecord(txn_id));
    } else {
      // Ops of other store kinds stay pending until their store replays;
      // persist the narrowed record so progress survives another crash.
      MMLIB_RETURN_IF_ERROR(WriteRecord(txn_id, record));
    }
  }
  return Status::OK();
}

}  // namespace mmlib::persist
