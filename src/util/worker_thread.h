#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>

namespace mmlib::util {

/// Single background thread executing submitted tasks strictly in FIFO
/// order, one at a time.
///
/// This is the house primitive for overlapping slow side work (asynchronous
/// checkpoint saves) with the main thread: serial execution means the side
/// work keeps exactly the order the main thread submitted it in, so any
/// order-sensitive state the tasks touch (the simnet fault RNG, the virtual
/// clock) sees the same sequence as a synchronous run. Tasks should catch
/// inside the task and stash errors for the submitter; as a safety net, an
/// exception that does escape a task is captured (first one wins, later
/// tasks still run) and rethrown from the next Drain(). An exception still
/// pending when the WorkerThread is destroyed is logged to stderr and
/// aborts the process — a background failure is never silently dropped.
///
/// The thread is lazily started on first Submit and joined on destruction
/// after finishing all queued tasks.
class WorkerThread {
 public:
  WorkerThread() = default;
  ~WorkerThread();

  WorkerThread(const WorkerThread&) = delete;
  WorkerThread& operator=(const WorkerThread&) = delete;

  /// Enqueues a task. Tasks run on the worker thread in submission order.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. Establishes a
  /// happens-before edge from all task effects to the caller. Rethrows the
  /// first exception that escaped a task since the last Drain (the pending
  /// slot is cleared first, so the WorkerThread remains usable).
  void Drain();

  /// Tasks that have finished executing (monotonic).
  uint64_t completed() const;

 private:
  void RunLoop();

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::thread thread_;
  bool started_ = false;
  bool stopping_ = false;
  bool busy_ = false;
  uint64_t completed_ = 0;
  std::exception_ptr pending_;  // first exception that escaped a task
};

}  // namespace mmlib::util
