#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mmlib {

/// Dimensions of a tensor, e.g. {N, C, H, W} for image batches.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  size_t rank() const { return dims_.size(); }
  int64_t dim(size_t i) const { return dims_[i]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total number of elements; 1 for a scalar (rank 0).
  int64_t numel() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 224, 224]"
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

}  // namespace mmlib

