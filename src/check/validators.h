#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "tensor/tensor.h"
#include "util/result.h"
#include "util/status.h"

/// Recoverable-input validators (DESIGN.md "Correctness tooling").
///
/// MMLIB_CHECK is for internal invariants; these helpers are for conditions
/// that depend on caller input or on bytes read from storage, so they report
/// through Status and keep the process alive. They centralize the error
/// phrasing so every module rejects bad shapes/bounds/values the same way.
namespace mmlib::check {

/// OK iff `got == want`; InvalidArgument naming both shapes otherwise.
Status ValidateShapesMatch(const Shape& got, const Shape& want,
                           std::string_view context);

/// OK iff the two tensors have equal shapes.
Status ValidateSameShape(const Tensor& a, const Tensor& b,
                         std::string_view context);

/// OK iff `shape.rank() == rank`.
Status ValidateRank(const Shape& shape, size_t rank, std::string_view context);

/// OK iff 0 <= index < size; OutOfRange otherwise.
Status ValidateIndex(int64_t index, int64_t size, std::string_view context);

/// OK iff value > 0; InvalidArgument otherwise.
Status ValidatePositive(int64_t value, std::string_view context);

/// OK iff every element of `t` is finite (no NaN, no +/-Inf); reports the
/// first offending index and value otherwise. O(numel) — call at module
/// boundaries (loss, persisted snapshots), not in per-element loops.
Status ValidateAllFinite(const Tensor& t, std::string_view context);

/// OK iff a layer received exactly `arity` non-null inputs. Shared by every
/// nn layer's Forward.
Status ValidateArity(const std::vector<const Tensor*>& inputs, size_t arity,
                     std::string_view layer_name);

/// OK iff `name` is usable as a storage id / collection name that becomes a
/// filesystem path component: non-empty, at most 200 chars, characters from
/// [A-Za-z0-9_-] (plus '.' when `allow_dot`, though never "." or "..").
Status ValidateResourceName(std::string_view name, bool allow_dot,
                            std::string_view context);

}  // namespace mmlib::check
