// fixture-path: src/core/fixture_leak.cc
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace mmlib {

void SerializeBlob(std::string* out) { out->push_back('x'); }

std::string LeakyDigest(const std::unordered_map<int, int>& counts) {
  std::string out;
  for (const auto& kv : counts) {  // finding: feeds SerializeBlob
    out.push_back(static_cast<char>(kv.second));
  }
  SerializeBlob(&out);
  return out;
}

std::string AllowedDigest(const std::unordered_map<int, int>& counts) {
  std::string out;
  for (const auto& kv : counts) {  // lint:allow(no-unordered-order-leak)
    out.push_back(static_cast<char>(kv.second));
  }
  SerializeBlob(&out);
  return out;
}

int CountOnly(const std::unordered_set<int>& values) {
  int n = 0;
  for (int v : values) {  // no sink reachable: no finding
    n += v;
  }
  return n;
}

std::string IteratorWalk(const std::unordered_map<int, int>& counts) {
  std::string out;
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // finding
    out.push_back(static_cast<char>(it->second));
  }
  SerializeBlob(&out);
  return out;
}

}  // namespace mmlib
