#include "data/preprocess.h"

#include <algorithm>

namespace mmlib::data {

bool PreprocessorConfig::operator==(const PreprocessorConfig& other) const {
  return center_crop == other.center_crop && mean == other.mean &&
         stddev == other.stddev;
}

json::Value PreprocessorConfig::ToJson() const {
  json::Value doc = json::Value::MakeObject();
  doc.Set("center_crop", center_crop);
  json::Value mean_list = json::Value::MakeArray();
  json::Value std_list = json::Value::MakeArray();
  for (int c = 0; c < 3; ++c) {
    mean_list.Append(static_cast<double>(mean[c]));
    std_list.Append(static_cast<double>(stddev[c]));
  }
  doc.Set("mean", std::move(mean_list));
  doc.Set("stddev", std::move(std_list));
  return doc;
}

Result<PreprocessorConfig> PreprocessorConfig::FromJson(
    const json::Value& doc) {
  PreprocessorConfig config;
  MMLIB_ASSIGN_OR_RETURN(config.center_crop, doc.GetBool("center_crop"));
  for (const auto& [key, target] :
       {std::pair<const char*, std::array<float, 3>*>{"mean", &config.mean},
        {"stddev", &config.stddev}}) {
    MMLIB_ASSIGN_OR_RETURN(const json::Value* list, doc.GetMember(key));
    if (!list->is_array() || list->as_array().size() != 3) {
      return Status::InvalidArgument(
          std::string("preprocessor ") + key + " must be a 3-element array");
    }
    for (int c = 0; c < 3; ++c) {
      const json::Value& v = list->as_array()[c];
      if (!v.is_number()) {
        return Status::InvalidArgument("preprocessor values must be numbers");
      }
      (*target)[c] = static_cast<float>(v.as_number());
    }
  }
  for (float s : config.stddev) {
    if (s == 0.0f) {
      return Status::InvalidArgument("preprocessor stddev must be non-zero");
    }
  }
  return config;
}

Preprocessor::Preprocessor(PreprocessorConfig config, int64_t output_size)
    : config_(config), output_size_(output_size) {}

void Preprocessor::Apply(const Image& image, bool flip, float* out) const {
  // Source window: whole image, or the largest centered square.
  int64_t src_h = image.height;
  int64_t src_w = image.width;
  int64_t off_y = 0;
  int64_t off_x = 0;
  if (config_.center_crop) {
    const int64_t side = std::min(src_h, src_w);
    off_y = (src_h - side) / 2;
    off_x = (src_w - side) / 2;
    src_h = side;
    src_w = side;
  }

  const int64_t s = output_size_;
  for (int64_t y = 0; y < s; ++y) {
    const int64_t sy = off_y + y * src_h / s;
    for (int64_t x = 0; x < s; ++x) {
      const int64_t xx = flip ? s - 1 - x : x;
      const int64_t sx = off_x + xx * src_w / s;
      const size_t src = (static_cast<size_t>(sy) * image.width + sx) * 3;
      for (int64_t c = 0; c < 3; ++c) {
        const float value =
            static_cast<float>(image.pixels[src + c]) / 255.0f;
        out[(c * s + y) * s + x] =
            (value - config_.mean[c]) / config_.stddev[c];
      }
    }
  }
}

}  // namespace mmlib::data
