/// mmlib_ctl — a small management CLI over a persistent model store.
///
/// Demonstrates the disk-backed stores and the catalog API:
///
///   mmlib_ctl <store-dir> demo            seed the store with a PUA chain
///   mmlib_ctl <store-dir> list            list all models
///   mmlib_ctl <store-dir> show <id>       show one model's details
///   mmlib_ctl <store-dir> chain <id>      print the derivation chain
///   mmlib_ctl <store-dir> recover <id>    recover + verify a model
///   mmlib_ctl <store-dir> delete <id>     delete a model (leaf only)
///
/// Everything persists under <store-dir>; run `demo` once, then explore.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>

#include "core/catalog.h"
#include "core/model_code.h"
#include "core/param_update.h"
#include "core/recover.h"
#include "docstore/document_store.h"
#include "env/environment.h"
#include "filestore/file_store.h"
#include "models/zoo.h"
#include "util/strings.h"
#include "util/table_printer.h"

using namespace mmlib;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunDemo(core::StorageBackends backends) {
  models::ModelConfig config =
      models::DefaultConfig(models::Architecture::kResNet18);
  config.channel_divisor = 8;
  config.image_size = 28;
  config.num_classes = 125;
  auto model = models::BuildModel(config);
  if (!model.ok()) {
    return Fail(model.status());
  }
  models::ApplyPartialUpdateFreeze(&model.value());
  const env::EnvironmentInfo environment = env::CollectEnvironment();

  core::ParamUpdateSaveService service(backends);
  core::SaveRequest request;
  request.model = &model.value();
  request.code = core::CodeDescriptorFor(config);
  request.environment = &environment;

  std::string base_id;
  Rng rng(1);
  for (int round = 0; round < 4; ++round) {
    if (round > 0) {
      // Simulated fine-tuning of the classifier head.
      for (size_t i = 0; i < model->node_count(); ++i) {
        for (nn::Param& param : model->layer(i)->params()) {
          if (param.trainable && !param.is_buffer) {
            for (int64_t k = 0; k < param.value.numel(); ++k) {
              param.value.at(k) += rng.NextGaussian() * 0.01f;
            }
          }
        }
      }
    }
    request.base_model_id = base_id;
    auto save = service.SaveModel(request);
    if (!save.ok()) {
      return Fail(save.status());
    }
    std::printf("saved %-28s (%8lld bytes, base: %s)\n",
                save->model_id.c_str(),
                static_cast<long long>(save->storage_bytes),
                base_id.empty() ? "-" : base_id.c_str());
    base_id = save->model_id;
  }
  std::printf("\ndemo chain written; try `list`, `chain %s`, `recover %s`\n",
              base_id.c_str(), base_id.c_str());
  return 0;
}

int RunList(core::StorageBackends backends) {
  core::ModelCatalog catalog(backends);
  auto models = catalog.ListModels();
  if (!models.ok()) {
    return Fail(models.status());
  }
  TablePrinter table({"id", "approach", "base", "snapshot", "params hash"});
  for (const core::ModelSummary& summary : models.value()) {
    table.AddRow({summary.id, summary.approach,
                  summary.base_model_id.empty() ? "-"
                                                : summary.base_model_id,
                  summary.has_params_snapshot ? "full" : "delta",
                  summary.params_hash.substr(0, 16)});
  }
  table.Print(std::cout);
  std::printf("%zu model(s)\n", models->size());
  return 0;
}

int RunShow(core::StorageBackends backends, const std::string& id) {
  core::ModelCatalog catalog(backends);
  auto info = catalog.GetInfo(id);
  if (!info.ok()) {
    return Fail(info.status());
  }
  std::printf("id:            %s\n", info->id.c_str());
  std::printf("approach:      %s\n", info->approach.c_str());
  std::printf("base model:    %s\n", info->base_model_id.empty()
                                         ? "(initial model)"
                                         : info->base_model_id.c_str());
  std::printf("architecture:  %s\n",
              info->architecture_fingerprint.substr(0, 16).c_str());
  std::printf("params hash:   %s\n", info->params_hash.c_str());
  std::printf("stored as:     %s\n",
              info->has_params_snapshot ? "full snapshot" : "delta/provenance");
  auto derived = catalog.GetDerived(id);
  if (derived.ok()) {
    std::printf("derived:       %zu model(s)\n", derived->size());
  }
  return 0;
}

int RunChain(core::StorageBackends backends, const std::string& id) {
  core::ModelCatalog catalog(backends);
  auto chain = catalog.GetChain(id);
  if (!chain.ok()) {
    return Fail(chain.status());
  }
  for (size_t i = 0; i < chain->size(); ++i) {
    std::printf("%*s%s%s\n", static_cast<int>(2 * i), "",
                i == 0 ? "" : "\\- ", (*chain)[i].c_str());
  }
  return 0;
}

int RunRecover(core::StorageBackends backends, const std::string& id) {
  core::ModelRecoverer recoverer(backends);
  auto recovered = recoverer.Recover(id, core::RecoverOptions{});
  if (!recovered.ok()) {
    return Fail(recovered.status());
  }
  std::printf("recovered %s in %.3f s\n", id.c_str(),
              recovered->breakdown.TotalSeconds());
  std::printf("  checksum verified:   %s\n",
              recovered->checksum_verified ? "yes" : "no");
  std::printf("  environment matches: %s\n",
              recovered->environment_matches ? "yes" : "no");
  for (const std::string& diff : recovered->environment_diffs) {
    std::printf("    env diff: %s\n", diff.c_str());
  }
  std::printf("  parameters:          %lld (%zu bytes)\n",
              static_cast<long long>(recovered->model.TotalParamCount()),
              recovered->model.ParamByteSize());
  return 0;
}

int RunDelete(core::StorageBackends backends, const std::string& id) {
  core::ModelCatalog catalog(backends);
  const Status status = catalog.DeleteModel(id);
  if (!status.ok()) {
    return Fail(status);
  }
  std::printf("deleted %s\n", id.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <store-dir> "
                 "demo|list|show|chain|recover|delete [id]\n",
                 argv[0]);
    return 2;
  }
  const std::string root = argv[1];
  const std::string verb = argv[2];

  auto docs = docstore::PersistentDocumentStore::Open(root + "/docs");
  if (!docs.ok()) {
    return Fail(docs.status());
  }
  auto files = filestore::LocalDirFileStore::Open(root + "/files");
  if (!files.ok()) {
    return Fail(files.status());
  }
  core::StorageBackends backends{docs->get(), files->get(), nullptr};

  if (verb == "demo") {
    return RunDemo(backends);
  }
  if (verb == "list") {
    return RunList(backends);
  }
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s <store-dir> %s <model-id>\n", argv[0],
                 verb.c_str());
    return 2;
  }
  const std::string id = argv[3];
  if (verb == "show") {
    return RunShow(backends, id);
  }
  if (verb == "chain") {
    return RunChain(backends, id);
  }
  if (verb == "recover") {
    return RunRecover(backends, id);
  }
  if (verb == "delete") {
    return RunDelete(backends, id);
  }
  std::fprintf(stderr, "unknown command: %s\n", verb.c_str());
  return 2;
}
