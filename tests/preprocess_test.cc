#include <gtest/gtest.h>

#include "data/dataloader.h"
#include "data/preprocess.h"

namespace mmlib::data {
namespace {

Image SolidImage(int64_t height, int64_t width, uint8_t r, uint8_t g,
                 uint8_t b) {
  Image image;
  image.height = height;
  image.width = width;
  image.pixels.resize(static_cast<size_t>(height) * width * 3);
  for (int64_t i = 0; i < height * width; ++i) {
    image.pixels[i * 3] = r;
    image.pixels[i * 3 + 1] = g;
    image.pixels[i * 3 + 2] = b;
  }
  return image;
}

TEST(PreprocessorConfigTest, JsonRoundtrip) {
  PreprocessorConfig config;
  config.center_crop = true;
  config.mean = {0.485f, 0.456f, 0.406f};   // the ImageNet constants
  config.stddev = {0.229f, 0.224f, 0.225f};
  auto restored = PreprocessorConfig::FromJson(config.ToJson()).value();
  EXPECT_TRUE(restored == config);
}

TEST(PreprocessorConfigTest, RejectsBadDocuments) {
  PreprocessorConfig config;
  json::Value doc = config.ToJson();
  doc.Set("mean", json::Value::Array{json::Value(1.0), json::Value(2.0)});
  EXPECT_FALSE(PreprocessorConfig::FromJson(doc).ok());
  doc = config.ToJson();
  doc.Set("stddev", json::Value::Array{json::Value(0.0), json::Value(1.0),
                                       json::Value(1.0)});
  EXPECT_FALSE(PreprocessorConfig::FromJson(doc).ok());
  EXPECT_FALSE(
      PreprocessorConfig::FromJson(json::Value::MakeObject()).ok());
}

TEST(PreprocessorTest, NormalizesPerChannel) {
  PreprocessorConfig config;
  config.mean = {0.0f, 0.5f, 1.0f};
  config.stddev = {1.0f, 0.5f, 2.0f};
  Preprocessor preprocessor(config, 2);
  const Image image = SolidImage(4, 4, 255, 255, 0);
  std::vector<float> out(3 * 2 * 2);
  preprocessor.Apply(image, /*flip=*/false, out.data());
  EXPECT_FLOAT_EQ(out[0], 1.0f);              // (1.0 - 0) / 1
  EXPECT_FLOAT_EQ(out[4], 1.0f);              // (1.0 - 0.5) / 0.5
  EXPECT_FLOAT_EQ(out[8], -0.5f);             // (0.0 - 1.0) / 2
}

TEST(PreprocessorTest, CenterCropUsesMiddleSquare) {
  // 2x6 image: left third red-ish, middle third green, right third blue.
  Image image;
  image.height = 2;
  image.width = 6;
  image.pixels.assign(2 * 6 * 3, 0);
  for (int64_t y = 0; y < 2; ++y) {
    for (int64_t x = 0; x < 6; ++x) {
      const size_t p = (y * 6 + x) * 3;
      image.pixels[p + (x < 2 ? 0 : (x < 4 ? 1 : 2))] = 255;
    }
  }
  PreprocessorConfig config;
  config.center_crop = true;
  config.mean = {0, 0, 0};
  Preprocessor preprocessor(config, 2);
  std::vector<float> out(3 * 2 * 2);
  preprocessor.Apply(image, false, out.data());
  // The centered 2x2 window is all green.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(out[0 * 4 + i], 0.0f);  // R
    EXPECT_FLOAT_EQ(out[1 * 4 + i], 1.0f);  // G
    EXPECT_FLOAT_EQ(out[2 * 4 + i], 0.0f);  // B
  }
}

TEST(PreprocessorTest, FlipMirrorsHorizontally) {
  // 1x2 image: left black, right white.
  Image image;
  image.height = 1;
  image.width = 2;
  image.pixels = {0, 0, 0, 255, 255, 255};
  PreprocessorConfig config;
  config.mean = {0, 0, 0};
  Preprocessor preprocessor(config, 2);
  std::vector<float> plain(3 * 2 * 2);
  std::vector<float> flipped(3 * 2 * 2);
  preprocessor.Apply(image, false, plain.data());
  preprocessor.Apply(image, true, flipped.data());
  // Row layout per channel: [y=0: x0 x1; y=1: x0 x1].
  EXPECT_FLOAT_EQ(plain[0], 0.0f);
  EXPECT_FLOAT_EQ(plain[1], 1.0f);
  EXPECT_FLOAT_EQ(flipped[0], 1.0f);
  EXPECT_FLOAT_EQ(flipped[1], 0.0f);
}

TEST(PreprocessorTest, LoaderUsesConfiguredNormalization) {
  SyntheticImageDataset dataset(PaperDatasetId::kCocoOutdoor512, 4096);
  DataLoaderOptions options;
  options.batch_size = 2;
  options.image_size = 8;
  options.num_classes = 10;
  options.shuffle = false;

  DataLoader default_loader(&dataset, options);
  options.preprocess.mean = {0.0f, 0.0f, 0.0f};
  DataLoader zero_mean_loader(&dataset, options);

  const Batch a = default_loader.GetBatch(0).value();
  const Batch b = zero_mean_loader.GetBatch(0).value();
  // Same pixels, shifted by the mean difference of 0.5.
  EXPECT_FALSE(a.images.Equals(b.images));
  for (int64_t i = 0; i < a.images.numel(); ++i) {
    ASSERT_NEAR(b.images.at(i) - a.images.at(i), 0.5f, 1e-6f);
  }
}

}  // namespace
}  // namespace mmlib::data
