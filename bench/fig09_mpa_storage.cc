/// Reproduces paper Figure 9: MPA storage consumption across datasets
/// (CF-512 vs CO-512) for MobileNetV2 and ResNet-152 — the storage depends
/// on the training dataset, not the model architecture.
#include <cstdio>

#include "bench/bench_common.h"

using namespace mmlib;
using namespace mmlib::bench;
using namespace mmlib::dist;

namespace {

void Panel(const char* panel_id, models::Architecture arch) {
  std::printf("--- Figure 9(%s): %s, fully updated, MPA ---\n", panel_id,
              std::string(models::ArchitectureName(arch)).c_str());
  std::vector<std::string> headers = {"use case", "CF-512", "CO-512"};
  std::vector<FlowResult> results;
  for (data::PaperDatasetId dataset :
       {data::PaperDatasetId::kCocoFood512,
        data::PaperDatasetId::kCocoOutdoor512}) {
    FlowConfig config;
    config.approach = ApproachKind::kProvenance;
    config.model = StorageScaleModel(arch);
    config.u3_dataset = dataset;
    config.dataset_divisor = MatchedDatasetDivisor(config.model);
    config.training_mode = TrainingMode::kSimulated;
    config.recover_models = false;
    results.push_back(RunFlow(config));
  }
  TablePrinter table(headers);
  for (const std::string& label : results[0].Labels()) {
    table.AddRow({label, Mb(results[0].MedianStorage(label)),
                  Mb(results[1].MedianStorage(label))});
  }
  table.Print(std::cout);
  std::printf("\n");
}

}  // namespace

int main() {
  PrintHeader(
      "Figure 9", "MPA storage across datasets",
      "Paper findings to reproduce: (1) U3 storage is nearly identical\n"
      "between MobileNetV2 and ResNet-152 (architecture-independent);\n"
      "(2) CF-512 rows exceed CO-512 rows by roughly the dataset size\n"
      "difference; (3) U1 differs per architecture (BA logic).");
  Panel("a", models::Architecture::kMobileNetV2);
  Panel("b", models::Architecture::kResNet152);
  return 0;
}
