#include <gtest/gtest.h>

#include <memory>

#include "core/export.h"
#include "core/model_code.h"
#include "data/dataloader.h"
#include "models/zoo.h"
#include "nn/loss.h"

namespace mmlib::core {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = models::DefaultConfig(models::Architecture::kResNet18);
    config_.channel_divisor = 8;
    config_.image_size = 28;
    config_.num_classes = 10;
    model_ = std::make_unique<nn::Model>(
        models::BuildModel(config_).value());
  }

  models::ModelConfig config_;
  std::unique_ptr<nn::Model> model_;
};

TEST_F(ExportTest, ExportImportReproducesInferenceExactly) {
  auto bundle =
      ExportPortable(*model_, CodeDescriptorFor(config_)).value();
  auto imported = ImportPortable(bundle).value();
  EXPECT_EQ(imported.ParamsHash(), model_->ParamsHash());

  // Inference of the imported model is bit-identical (paper Section 2.2:
  // the model is *recoverable* from the bundle...).
  data::SyntheticImageDataset dataset(
      data::PaperDatasetId::kCocoOutdoor512, 4096);
  data::DataLoaderOptions options;
  options.batch_size = 4;
  options.image_size = 28;
  options.num_classes = 10;
  data::DataLoader loader(&dataset, options);
  const data::Batch batch = loader.GetBatch(0).value();

  nn::ExecutionContext ctx1 = nn::ExecutionContext::Deterministic(1);
  ctx1.set_training(false);
  nn::ExecutionContext ctx2 = nn::ExecutionContext::Deterministic(1);
  ctx2.set_training(false);
  Tensor original_out = model_->Forward(batch.images, &ctx1).value();
  Tensor imported_out = imported.Forward(batch.images, &ctx2).value();
  EXPECT_TRUE(original_out.Equals(imported_out));
}

TEST_F(ExportTest, BundleSerializationRoundtrip) {
  auto bundle =
      ExportPortable(*model_, CodeDescriptorFor(config_)).value();
  auto restored = PortableBundle::Deserialize(bundle.Serialize()).value();
  EXPECT_TRUE(restored.manifest == bundle.manifest);
  EXPECT_EQ(restored.parameters, bundle.parameters);
  EXPECT_TRUE(ImportPortable(restored).ok());
}

TEST_F(ExportTest, BundleCarriesNoProvenance) {
  // ... but, unlike mmlib's managed representation, the bundle has no base
  // model, no training process, no environment — retraining-based recovery
  // is impossible from it (the paper's criticism of PMML/PFA/ONNX).
  auto bundle =
      ExportPortable(*model_, CodeDescriptorFor(config_)).value();
  EXPECT_FALSE(bundle.manifest.Has("base_model"));
  EXPECT_FALSE(bundle.manifest.Has("provenance"));
  EXPECT_FALSE(bundle.manifest.Has("env_doc"));
}

TEST_F(ExportTest, ImportDetectsTamperedParameters) {
  auto bundle =
      ExportPortable(*model_, CodeDescriptorFor(config_)).value();
  bundle.parameters[bundle.parameters.size() - 1] ^= 0x01;
  EXPECT_EQ(ImportPortable(bundle).status().code(),
            StatusCode::kCorruption);
}

TEST_F(ExportTest, ImportRejectsWrongFormat) {
  auto bundle =
      ExportPortable(*model_, CodeDescriptorFor(config_)).value();
  bundle.manifest.Set("format", "onnx");
  EXPECT_FALSE(ImportPortable(bundle).ok());
  bundle.manifest.Set("format", "mmlib-portable");
  bundle.manifest.Set("version", 99);
  EXPECT_EQ(ImportPortable(bundle).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(ExportTest, DeserializeRejectsCorruption) {
  auto bundle =
      ExportPortable(*model_, CodeDescriptorFor(config_)).value();
  Bytes data = bundle.Serialize();
  data.resize(data.size() / 2);
  EXPECT_FALSE(PortableBundle::Deserialize(data).ok());
  data = bundle.Serialize();
  data.push_back(0);
  EXPECT_FALSE(PortableBundle::Deserialize(data).ok());
}

}  // namespace
}  // namespace mmlib::core
