#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "docstore/document_store.h"

namespace mmlib::docstore {
namespace {

json::Value MakeDoc(const std::string& key, int value) {
  json::Value doc = json::Value::MakeObject();
  doc.Set(key, value);
  return doc;
}

/// Parameterized over store implementations.
enum class StoreKind { kInMemory, kPersistent };

class DocumentStoreTest : public ::testing::TestWithParam<StoreKind> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreKind::kInMemory) {
      store_ = std::make_unique<InMemoryDocumentStore>();
    } else {
      root_ = ::testing::TempDir() + "/docstore-" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name();
      std::filesystem::remove_all(root_);
      auto opened = PersistentDocumentStore::Open(root_);
      ASSERT_TRUE(opened.ok()) << opened.status();
      store_ = std::move(opened).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!root_.empty()) {
      std::filesystem::remove_all(root_);
    }
  }

  std::unique_ptr<DocumentStore> store_;
  std::string root_;
};

TEST_P(DocumentStoreTest, InsertGetRoundtrip) {
  const std::string id = store_->Insert("models", MakeDoc("x", 1)).value();
  auto doc = store_->Get("models", id);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ(doc->GetInt("x").value(), 1);
  EXPECT_EQ(doc->GetString("_id").value(), id);
}

TEST_P(DocumentStoreTest, IdsAreUniqueAndPrefixed) {
  const std::string a = store_->Insert("models", MakeDoc("x", 1)).value();
  const std::string b = store_->Insert("models", MakeDoc("x", 2)).value();
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("models", 0), 0u);
}

TEST_P(DocumentStoreTest, GetMissingFails) {
  EXPECT_EQ(store_->Get("models", "nope").status().code(),
            StatusCode::kNotFound);
  store_->Insert("models", MakeDoc("x", 1)).value();
  EXPECT_EQ(store_->Get("other", "nope").status().code(),
            StatusCode::kNotFound);
}

TEST_P(DocumentStoreTest, DeleteRemoves) {
  const std::string id = store_->Insert("models", MakeDoc("x", 1)).value();
  ASSERT_TRUE(store_->Delete("models", id).ok());
  EXPECT_FALSE(store_->Get("models", id).ok());
  EXPECT_EQ(store_->Delete("models", id).code(), StatusCode::kNotFound);
}

TEST_P(DocumentStoreTest, ListIdsSorted) {
  std::vector<std::string> inserted;
  for (int i = 0; i < 5; ++i) {
    inserted.push_back(store_->Insert("c", MakeDoc("i", i)).value());
  }
  auto ids = store_->ListIds("c").value();
  EXPECT_EQ(ids.size(), 5u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_TRUE(store_->ListIds("missing").value().empty());
}

TEST_P(DocumentStoreTest, CollectionsAreIsolated) {
  const std::string id = store_->Insert("a", MakeDoc("x", 1)).value();
  EXPECT_FALSE(store_->Get("b", id).ok());
}

TEST_P(DocumentStoreTest, RejectsNonObjectDocuments) {
  EXPECT_FALSE(store_->Insert("c", json::Value(3)).ok());
  EXPECT_FALSE(store_->Insert("c", json::Value::MakeArray()).ok());
}

TEST_P(DocumentStoreTest, AccountsStoredBytes) {
  EXPECT_EQ(store_->DocumentCount(), 0u);
  store_->Insert("c", MakeDoc("payload", 12345)).value();
  EXPECT_EQ(store_->DocumentCount(), 1u);
  EXPECT_GT(store_->TotalStoredBytes(), 10u);
}

TEST_P(DocumentStoreTest, NestedDocumentsSurviveRoundtrip) {
  json::Value doc = json::Value::MakeObject();
  json::Value inner = json::Value::MakeObject();
  inner.Set("list", json::Value::Array{json::Value(1), json::Value("two")});
  doc.Set("inner", std::move(inner));
  const std::string id = store_->Insert("c", doc).value();
  auto loaded = store_->Get("c", id).value();
  EXPECT_EQ(loaded.FindMember("inner")
                ->FindMember("list")
                ->as_array()[1]
                .as_string(),
            "two");
}

TEST_P(DocumentStoreTest, FindByFieldMatchesStringEquality) {
  json::Value a = json::Value::MakeObject();
  a.Set("base_model", "root-1");
  const std::string a_id = store_->Insert("models", a).value();
  json::Value b = json::Value::MakeObject();
  b.Set("base_model", "root-1");
  const std::string b_id = store_->Insert("models", b).value();
  json::Value c = json::Value::MakeObject();
  c.Set("base_model", "other");
  store_->Insert("models", c).value();
  json::Value d = json::Value::MakeObject();
  d.Set("unrelated", 7);
  store_->Insert("models", d).value();

  auto matches = store_->FindByField("models", "base_model", "root-1").value();
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_TRUE((matches[0] == a_id && matches[1] == b_id) ||
              (matches[0] == b_id && matches[1] == a_id));
  EXPECT_TRUE(
      store_->FindByField("models", "base_model", "nope").value().empty());
  EXPECT_TRUE(
      store_->FindByField("empty-coll", "k", "v").value().empty());
}

INSTANTIATE_TEST_SUITE_P(Stores, DocumentStoreTest,
                         ::testing::Values(StoreKind::kInMemory,
                                           StoreKind::kPersistent),
                         [](const ::testing::TestParamInfo<StoreKind>& info) {
                           return info.param == StoreKind::kInMemory
                                      ? "InMemory"
                                      : "Persistent";
                         });

TEST(PersistentDocumentStoreTest, SurvivesReopen) {
  const std::string root = ::testing::TempDir() + "/docstore-reopen";
  std::filesystem::remove_all(root);
  std::string id;
  {
    auto store = PersistentDocumentStore::Open(root).value();
    id = store->Insert("models", MakeDoc("x", 42)).value();
  }
  {
    auto store = PersistentDocumentStore::Open(root).value();
    EXPECT_EQ(store->Get("models", id).value().GetInt("x").value(), 42);
    EXPECT_EQ(store->ListIds("models").value().size(), 1u);
    // The reopened store restarts its id stream but must not overwrite
    // documents written before the reopen.
    const std::string id2 = store->Insert("models", MakeDoc("x", 43)).value();
    EXPECT_NE(id2, id);
    EXPECT_EQ(store->Get("models", id).value().GetInt("x").value(), 42);
    EXPECT_EQ(store->ListIds("models").value().size(), 2u);
  }
  std::filesystem::remove_all(root);
}

TEST(PersistentDocumentStoreTest, RejectsUnsafeNames) {
  const std::string root = ::testing::TempDir() + "/docstore-unsafe";
  std::filesystem::remove_all(root);
  auto store = PersistentDocumentStore::Open(root).value();
  EXPECT_FALSE(store->Insert("../evil", MakeDoc("x", 1)).ok());
  EXPECT_FALSE(store->Get("models", "../../etc/passwd").ok());
  EXPECT_FALSE(store->Get("a/b", "id").ok());
  std::filesystem::remove_all(root);
}

TEST(RemoteDocumentStoreTest, ChargesNetworkPerOperation) {
  InMemoryDocumentStore backend;
  simnet::Network network(simnet::Link{1000.0, 0.0});  // 1000 B/s, no latency
  RemoteDocumentStore remote(&backend, &network);

  const std::string id = remote.Insert("c", MakeDoc("x", 1)).value();
  const uint64_t after_insert = network.TotalBytes();
  EXPECT_GT(after_insert, 0u);
  remote.Get("c", id).value();
  EXPECT_GT(network.TotalBytes(), after_insert);
  EXPECT_GT(network.TotalTransferSeconds(), 0.0);
  // The backing store actually holds the document.
  EXPECT_EQ(backend.DocumentCount(), 1u);
}

TEST(RemoteDocumentStoreTest, EveryOperationIsARequestResponsePair) {
  InMemoryDocumentStore backend;
  simnet::Network network(simnet::Link{1000.0, 0.0});
  RemoteDocumentStore remote(&backend, &network);

  const std::string id = remote.Insert("c", MakeDoc("x", 1)).value();
  uint64_t messages = network.MessageCount();
  EXPECT_EQ(messages, 2u);  // document upload + id acknowledgement

  remote.Get("c", id).value();
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  remote.ListIds("c").value();
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  remote.FindByField("c", "x", "nope").value();
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  // Stats pass-throughs are charged too: metric reads are not free.
  EXPECT_EQ(remote.DocumentCount(), 1u);
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  EXPECT_GT(remote.TotalStoredBytes(), 0u);
  EXPECT_EQ(network.MessageCount(), messages + 2);
  messages = network.MessageCount();

  EXPECT_TRUE(remote.Delete("c", id).ok());
  EXPECT_EQ(network.MessageCount(), messages + 2);
}

}  // namespace
}  // namespace mmlib::docstore
