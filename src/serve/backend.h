#pragma once

#include <array>
#include <cstdint>

#include "serve/request.h"
#include "simnet/network.h"
#include "util/status.h"

namespace mmlib::serve {

/// Outcome of one backend execution: final status code, the virtual-clock
/// seconds the work consumed (the front end holds a worker slot for exactly
/// this long), and payload bytes moved.
struct BackendOutcome {
  StatusCode code = StatusCode::kOk;
  double service_seconds = 0.0;
  uint64_t bytes = 0;
};

/// What a coordinator node dispatches requests to. Implementations must be
/// deterministic: the outcome of a request may depend only on the request's
/// identity (sequence/kind/tenant), the backend's own seed, and the state
/// of the simulated network at dispatch time — never on how other requests
/// were interleaved around it.
class ServeBackend {
 public:
  virtual ~ServeBackend() = default;

  /// Executes `request` at virtual time `now_seconds`. For inference,
  /// `batch_size` >= 1 requests share one model pass and this is called
  /// once for the whole batch (the front end fans the outcome out);
  /// non-inference kinds always see batch_size == 1.
  virtual BackendOutcome Execute(const Request& request, size_t batch_size,
                                 double now_seconds) = 0;
};

/// Arithmetic backend model for saturation-scale runs (millions of
/// requests): per-kind base service times with hash-keyed jitter and a
/// heavy-tail mode, bound to one simnet replica for availability. Costs are
/// computed, not transferred, so a run's wall-clock stays flat no matter
/// the offered load; availability still comes from the real network state
/// (replica crashes, partitions) and so degrades exactly like the real
/// store clients do.
struct SimulatedBackendOptions {
  /// Base service seconds per RequestKind (save, recover, probe,
  /// inference).
  std::array<double, kRequestKindCount> base_seconds = {0.020, 0.012, 0.002,
                                                        0.004};
  /// Service time is scaled by 1 + jitter * u with u in [0, 1) drawn by
  /// hash from the request identity.
  double jitter_fraction = 0.5;
  /// With this probability (hash-keyed) a request lands in the slow tail
  /// and its service time is multiplied by `tail_multiplier` — the tail
  /// hedged reads and deadlines exist to fight.
  double tail_probability = 0.02;
  double tail_multiplier = 8.0;
  /// Marginal cost of each batched request beyond the first, as a fraction
  /// of the base cost: batch of n costs base * (1 + (n-1) * marginal).
  double batch_marginal_fraction = 0.25;
  /// Probability (hash-keyed) that a request fails Unavailable even with
  /// the replica reachable — transient backend faults for breaker tests.
  double fault_probability = 0.0;
  /// Seconds burned learning that an unreachable replica is unreachable
  /// (one timeout's worth, not a full retry ladder).
  double unavailable_seconds = 0.050;
  uint64_t seed = 0x5e21;
};

class SimulatedBackend : public ServeBackend {
 public:
  /// `network` may be null (backend always reachable). `replica` is the
  /// simnet replica node this backend's availability is bound to.
  SimulatedBackend(const SimulatedBackendOptions& options,
                   simnet::Network* network, size_t replica)
      : options_(options), network_(network), replica_(replica) {}

  BackendOutcome Execute(const Request& request, size_t batch_size,
                         double now_seconds) override;

  size_t replica() const { return replica_; }

 private:
  SimulatedBackendOptions options_;
  simnet::Network* network_;
  size_t replica_;
};

}  // namespace mmlib::serve
