#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hash/merkle_tree.h"
#include "nn/layer.h"

namespace mmlib::nn {

/// Receives per-layer activations and gradients during Forward/Backward.
/// Implemented by the reproducibility probing tool (paper Section 2.4).
class ActivationObserver {
 public:
  virtual ~ActivationObserver() = default;
  virtual void OnForward(const std::string& layer_name,
                         const Tensor& output) = 0;
  virtual void OnBackward(const std::string& layer_name,
                          const Tensor& grad_input) = 0;
};

/// Per-layer parameter hash, in layer order.
struct LayerHash {
  std::string layer_name;
  Digest digest;
};

/// A neural network as a DAG of layers, executed in insertion (topological)
/// order. Node inputs reference earlier nodes or the model input.
///
/// The Model is the unit the mmlib save/recover approaches operate on: it
/// exposes the layer-granular state (paper: "the model's internal data
/// structure that maps each layer to its parameters"), per-layer hashes for
/// the PUA's Merkle tree, and an architecture fingerprint standing in for
/// the model code.
class Model {
 public:
  /// Sentinel node id referring to the model input tensor.
  static constexpr int64_t kInputNode = -1;

  explicit Model(std::string architecture_name)
      : architecture_name_(std::move(architecture_name)) {}

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Adds a node consuming `inputs` (ids of earlier nodes or kInputNode);
  /// returns the new node id. The last added node is the model output.
  int64_t AddNode(std::unique_ptr<Layer> layer, std::vector<int64_t> inputs);

  /// Convenience for sequential sections: consumes the previous node (or the
  /// model input when the model is empty).
  int64_t AddSequential(std::unique_ptr<Layer> layer);

  const std::string& architecture_name() const { return architecture_name_; }
  size_t node_count() const { return nodes_.size(); }
  Layer* layer(size_t i) { return nodes_[i].layer.get(); }
  const Layer* layer(size_t i) const { return nodes_[i].layer.get(); }

  /// Runs the network; keeps activations for Backward.
  Result<Tensor> Forward(const Tensor& input, ExecutionContext* ctx);

  /// Backpropagates from the model output; returns the gradient w.r.t. the
  /// model input. Parameter gradients accumulate in the layers.
  Result<Tensor> Backward(const Tensor& grad_output, ExecutionContext* ctx);

  void ZeroGrad();

  /// Total trainable parameter element count (paper Table 2 "#Params").
  int64_t TrainableParamCount() const;
  /// Total element count including frozen parameters and buffers.
  int64_t TotalParamCount() const;
  /// Bytes of a full parameter snapshot (Table 2 "Size").
  size_t ParamByteSize() const;

  /// Marks all layers trainable/frozen.
  void SetTrainableAll(bool trainable);
  /// Marks layers whose name matches `predicate` trainable, all others
  /// frozen. Returns the number of layers left trainable.
  size_t SetTrainableWhere(
      const std::function<bool(const Layer&)>& predicate);

  /// Per-layer parameter hashes in layer order (Merkle tree leaves).
  std::vector<LayerHash> LayerHashes() const;

  /// Merkle tree over the layer hashes (paper Figure 4). Layer leaves are
  /// hashed in parallel on `pool` (the process-wide pool when null); each
  /// leaf is an independent hash written to its own slot, so the tree is
  /// identical for every pool size.
  Result<MerkleTree> BuildMerkleTree(util::ThreadPool* pool = nullptr) const;

  /// SHA-256 over all parameters and buffers; two models with equal
  /// architecture and equal ParamsHash are equal in the paper's sense.
  Digest ParamsHash() const;

  /// Hash of the architecture: layer names, types, arities, parameter
  /// shapes, and graph edges. Stands in for "the model code" — two models
  /// with the same fingerprint can exchange parameter snapshots.
  Digest ArchitectureFingerprint() const;

  /// Serializes all parameters and buffers layer by layer.
  Bytes SerializeParams() const;
  /// Restores a snapshot produced by SerializeParams; architecture must
  /// match.
  Status LoadParams(const Bytes& data);

  /// Writes the gradients of every trainable parameter into `out`
  /// (resized), concatenated in layer/parameter order — the fixed
  /// traversal the data-parallel all-reduce reduces over. Buffers and
  /// frozen parameters are skipped; they are never synchronized.
  void FlattenTrainableGrads(std::vector<float>* out) const;
  /// Writes `flat` (produced by FlattenTrainableGrads, possibly reduced)
  /// back into the trainable parameters' gradients. InvalidArgument when
  /// the element count does not match the current trainable set.
  Status LoadTrainableGrads(const std::vector<float>& flat);

  /// Serializes only the given layers (by node index), with names — the
  /// PUA's "parameter update" payload.
  Bytes SerializeLayerSubset(const std::vector<size_t>& layer_indices) const;
  /// Merges a subset snapshot into this model (layers found in the snapshot
  /// are overwritten, everything else is kept — paper Section 3.2 recovery).
  Status MergeLayerSubset(const Bytes& data);

  /// Index of the node whose layer is named `name`, or error.
  Result<size_t> FindLayerIndex(const std::string& name) const;

  /// Observer receiving activations/gradients; may be nullptr.
  void set_observer(ActivationObserver* observer) { observer_ = observer; }
  ActivationObserver* observer() const { return observer_; }

 private:
  struct Node {
    std::unique_ptr<Layer> layer;
    std::vector<int64_t> inputs;
  };

  std::string architecture_name_;
  std::vector<Node> nodes_;
  std::vector<Tensor> activations_;  // per node, valid after Forward
  Tensor input_;                     // cached model input
  ActivationObserver* observer_ = nullptr;
};

}  // namespace mmlib::nn

